"""The context (session) management service (§3.3).

Gateway "implements a service for capturing and organizing the user's
session (or context) for archival purposes ... We organize context in a
container structure that can be mapped to a directory structure such as the
Unix file system ... separate contexts for each user, and subdivide the user
contexts into problem contexts, which are further divided into session
contexts."

Two deployment styles, because the paper critiques its own service:

- :class:`ContextManagerService` — the faithful monolith.  "Also notable is
  that this service contained over 60 methods ... To implement this
  properly, the service will have to be broken up into more reasonable
  parts."  It also reproduces the placeholder-context workaround: "we were
  forced to create placeholder contexts in our SOAP wrappers" for stateless
  (HotPage-style) callers.
- :class:`UserContextService` / :class:`PropertyService` /
  :class:`SessionArchiveService` — the decomposition the paper calls for.

Experiment C4 compares the two.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.faults import ContextError
from repro.soap.server import SoapService
from repro.transport.clock import SimClock
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer
from repro.xmlutil.element import XmlElement, parse_xml

CONTEXT_NAMESPACE = "urn:iu:context-manager"
USERCTX_NAMESPACE = "urn:gce:user-context"
PROPERTY_NAMESPACE = "urn:gce:context-property"
ARCHIVE_NAMESPACE = "urn:gce:session-archive"


@dataclass
class ContextNode:
    """A node in the context tree."""

    name: str
    created: float = 0.0
    modified: float = 0.0
    placeholder: bool = False
    descriptor: str = ""
    properties: dict[str, str] = field(default_factory=dict)
    children: dict[str, "ContextNode"] = field(default_factory=dict)

    def to_xml(self) -> XmlElement:
        node = XmlElement("context", {"name": self.name})
        if self.placeholder:
            node.set("placeholder", "true")
        for key, value in sorted(self.properties.items()):
            node.child("property", text=value).set("key", key)
        if self.descriptor:
            node.child("descriptor", text=self.descriptor)
        for child in self.children.values():
            node.append(child.to_xml())
        return node

    @staticmethod
    def from_xml(source: str | XmlElement, *, now: float = 0.0) -> "ContextNode":
        el = parse_xml(source) if isinstance(source, str) else source
        if el.tag.local != "context":
            raise ContextError(f"not a context element: {el.tag}")
        node = ContextNode(
            name=el.get("name", "") or "",
            created=now,
            modified=now,
            placeholder=(el.get("placeholder") == "true"),
            descriptor=el.findtext("descriptor"),
        )
        for prop in el.findall("property"):
            node.properties[prop.get("key", "") or ""] = prop.text
        for child in el.findall("context"):
            sub = ContextNode.from_xml(child, now=now)
            node.children[sub.name] = sub
        return node


class ContextStore:
    """The shared tree: user -> problem -> session, plus archives."""

    def __init__(self, clock: SimClock | None = None):
        self.clock = clock or SimClock()
        self.root = ContextNode("", created=self.clock.now, modified=self.clock.now)
        self.archives: dict[str, ContextNode] = {}
        self._placeholder_ids = itertools.count(1)

    # -- generic node algebra -----------------------------------------------------

    def node(self, path: str) -> ContextNode:
        current = self.root
        for part in self._parts(path):
            child = current.children.get(part)
            if child is None:
                raise ContextError(f"no context {path!r}", {"path": path})
            current = child
        return current

    def exists(self, path: str) -> bool:
        try:
            self.node(path)
            return True
        except ContextError:
            return False

    def create(self, path: str, *, placeholder: bool = False) -> ContextNode:
        current = self.root
        now = self.clock.now
        for part in self._parts(path):
            if part not in current.children:
                current.children[part] = ContextNode(
                    part, created=now, modified=now, placeholder=placeholder
                )
            current = current.children[part]
        return current

    def remove(self, path: str) -> None:
        parts = self._parts(path)
        if not parts:
            raise ContextError("cannot remove the root context")
        parent = self.node("/".join(parts[:-1]))
        if parts[-1] not in parent.children:
            raise ContextError(f"no context {path!r}", {"path": path})
        del parent.children[parts[-1]]
        parent.modified = self.clock.now

    def rename(self, path: str, new_name: str) -> None:
        parts = self._parts(path)
        if not parts:
            raise ContextError("cannot rename the root context")
        parent = self.node("/".join(parts[:-1]))
        if new_name in parent.children:
            raise ContextError(f"context {new_name!r} already exists")
        node = parent.children.pop(parts[-1], None)
        if node is None:
            raise ContextError(f"no context {path!r}", {"path": path})
        node.name = new_name
        node.modified = self.clock.now
        parent.children[new_name] = node

    def copy(self, src: str, dst: str) -> None:
        node = self.node(src)
        clone = ContextNode.from_xml(node.to_xml(), now=self.clock.now)
        parts = self._parts(dst)
        parent = self.create("/".join(parts[:-1])) if parts[:-1] else self.root
        clone.name = parts[-1]
        parent.children[parts[-1]] = clone

    def move(self, src: str, dst: str) -> None:
        self.copy(src, dst)
        self.remove(src)

    @staticmethod
    def _parts(path: str) -> list[str]:
        return [p for p in path.strip("/").split("/") if p]


class ContextManagerService:
    """The faithful 60+-method Gateway context manager monolith.

    Method naming follows the original's level-specific style — one family
    of methods per hierarchy level — which is exactly why the interface
    ballooned.  Paths: user / user+problem / user+problem+session.
    """

    def __init__(self, store: ContextStore | None = None, clock: SimClock | None = None):
        self.store = store or ContextStore(clock)
        self.calls = 0

    def _touch(self, path: str) -> None:
        self.store.node(path).modified = self.store.clock.now

    # ---- user contexts -------------------------------------------------------

    def createUserContext(self, user: str) -> str:
        """Create a top-level context for a portal user."""
        self.calls += 1
        self.store.create(user)
        return user

    def removeUserContext(self, user: str) -> bool:
        self.calls += 1
        self.store.remove(user)
        return True

    def hasUserContext(self, user: str) -> bool:
        self.calls += 1
        return self.store.exists(user)

    def listUserContexts(self) -> list[str]:
        self.calls += 1
        return sorted(self.store.root.children)

    def renameUserContext(self, user: str, new_name: str) -> bool:
        self.calls += 1
        self.store.rename(user, new_name)
        return True

    def getUserCreated(self, user: str) -> float:
        self.calls += 1
        return self.store.node(user).created

    def getUserModified(self, user: str) -> float:
        self.calls += 1
        return self.store.node(user).modified

    def touchUser(self, user: str) -> bool:
        self.calls += 1
        self._touch(user)
        return True

    def countProblems(self, user: str) -> int:
        self.calls += 1
        return len(self.store.node(user).children)

    def exportUserXml(self, user: str) -> str:
        self.calls += 1
        return self.store.node(user).to_xml().serialize()

    # ---- problem contexts --------------------------------------------------------

    def createProblemContext(self, user: str, problem: str) -> str:
        """Create a problem context under a user."""
        self.calls += 1
        if not self.store.exists(user):
            raise ContextError(f"no user context {user!r}")
        self.store.create(f"{user}/{problem}")
        return f"{user}/{problem}"

    def removeProblemContext(self, user: str, problem: str) -> bool:
        self.calls += 1
        self.store.remove(f"{user}/{problem}")
        return True

    def hasProblemContext(self, user: str, problem: str) -> bool:
        self.calls += 1
        return self.store.exists(f"{user}/{problem}")

    def listProblemContexts(self, user: str) -> list[str]:
        self.calls += 1
        return sorted(self.store.node(user).children)

    def renameProblemContext(self, user: str, problem: str, new_name: str) -> bool:
        self.calls += 1
        self.store.rename(f"{user}/{problem}", new_name)
        return True

    def getProblemCreated(self, user: str, problem: str) -> float:
        self.calls += 1
        return self.store.node(f"{user}/{problem}").created

    def getProblemModified(self, user: str, problem: str) -> float:
        self.calls += 1
        return self.store.node(f"{user}/{problem}").modified

    def touchProblem(self, user: str, problem: str) -> bool:
        self.calls += 1
        self._touch(f"{user}/{problem}")
        return True

    def countSessions(self, user: str, problem: str) -> int:
        self.calls += 1
        return len(self.store.node(f"{user}/{problem}").children)

    def copyProblemContext(self, user: str, problem: str, new_name: str) -> bool:
        self.calls += 1
        self.store.copy(f"{user}/{problem}", f"{user}/{new_name}")
        return True

    # ---- session contexts -----------------------------------------------------------

    def createSessionContext(self, user: str, problem: str, session: str) -> str:
        """Create a session context under a problem."""
        self.calls += 1
        if not self.store.exists(f"{user}/{problem}"):
            raise ContextError(f"no problem context {user}/{problem}")
        self.store.create(f"{user}/{problem}/{session}")
        return f"{user}/{problem}/{session}"

    def removeSessionContext(self, user: str, problem: str, session: str) -> bool:
        self.calls += 1
        self.store.remove(f"{user}/{problem}/{session}")
        return True

    def hasSessionContext(self, user: str, problem: str, session: str) -> bool:
        self.calls += 1
        return self.store.exists(f"{user}/{problem}/{session}")

    def listSessionContexts(self, user: str, problem: str) -> list[str]:
        self.calls += 1
        return sorted(self.store.node(f"{user}/{problem}").children)

    def renameSessionContext(
        self, user: str, problem: str, session: str, new_name: str
    ) -> bool:
        self.calls += 1
        self.store.rename(f"{user}/{problem}/{session}", new_name)
        return True

    def getSessionCreated(self, user: str, problem: str, session: str) -> float:
        self.calls += 1
        return self.store.node(f"{user}/{problem}/{session}").created

    def getSessionModified(self, user: str, problem: str, session: str) -> float:
        self.calls += 1
        return self.store.node(f"{user}/{problem}/{session}").modified

    def touchSession(self, user: str, problem: str, session: str) -> bool:
        self.calls += 1
        self._touch(f"{user}/{problem}/{session}")
        return True

    def copySessionContext(
        self, user: str, problem: str, session: str, new_name: str
    ) -> bool:
        self.calls += 1
        self.store.copy(
            f"{user}/{problem}/{session}", f"{user}/{problem}/{new_name}"
        )
        return True

    def moveSessionContext(
        self, user: str, problem: str, session: str, new_problem: str
    ) -> bool:
        self.calls += 1
        self.store.move(
            f"{user}/{problem}/{session}", f"{user}/{new_problem}/{session}"
        )
        return True

    def getSessionDescriptor(self, user: str, problem: str, session: str) -> str:
        """The application-instance descriptor XML archived in the session."""
        self.calls += 1
        return self.store.node(f"{user}/{problem}/{session}").descriptor

    def setSessionDescriptor(
        self, user: str, problem: str, session: str, descriptor: str
    ) -> bool:
        self.calls += 1
        node = self.store.node(f"{user}/{problem}/{session}")
        node.descriptor = descriptor
        node.modified = self.store.clock.now
        return True

    # ---- properties, one family per level --------------------------------------------

    def setUserProperty(self, user: str, key: str, value: str) -> bool:
        self.calls += 1
        node = self.store.node(user)
        node.properties[key] = value
        node.modified = self.store.clock.now
        return True

    def getUserProperty(self, user: str, key: str) -> str:
        self.calls += 1
        return self.store.node(user).properties.get(key, "")

    def hasUserProperty(self, user: str, key: str) -> bool:
        self.calls += 1
        return key in self.store.node(user).properties

    def removeUserProperty(self, user: str, key: str) -> bool:
        self.calls += 1
        return self.store.node(user).properties.pop(key, None) is not None

    def listUserProperties(self, user: str) -> list[str]:
        self.calls += 1
        return sorted(self.store.node(user).properties)

    def clearUserProperties(self, user: str) -> bool:
        self.calls += 1
        self.store.node(user).properties.clear()
        return True

    def setProblemProperty(self, user: str, problem: str, key: str, value: str) -> bool:
        self.calls += 1
        node = self.store.node(f"{user}/{problem}")
        node.properties[key] = value
        node.modified = self.store.clock.now
        return True

    def getProblemProperty(self, user: str, problem: str, key: str) -> str:
        self.calls += 1
        return self.store.node(f"{user}/{problem}").properties.get(key, "")

    def hasProblemProperty(self, user: str, problem: str, key: str) -> bool:
        self.calls += 1
        return key in self.store.node(f"{user}/{problem}").properties

    def removeProblemProperty(self, user: str, problem: str, key: str) -> bool:
        self.calls += 1
        return (
            self.store.node(f"{user}/{problem}").properties.pop(key, None) is not None
        )

    def listProblemProperties(self, user: str, problem: str) -> list[str]:
        self.calls += 1
        return sorted(self.store.node(f"{user}/{problem}").properties)

    def clearProblemProperties(self, user: str, problem: str) -> bool:
        self.calls += 1
        self.store.node(f"{user}/{problem}").properties.clear()
        return True

    def setSessionProperty(
        self, user: str, problem: str, session: str, key: str, value: str
    ) -> bool:
        self.calls += 1
        node = self.store.node(f"{user}/{problem}/{session}")
        node.properties[key] = value
        node.modified = self.store.clock.now
        return True

    def getSessionProperty(
        self, user: str, problem: str, session: str, key: str
    ) -> str:
        self.calls += 1
        return self.store.node(f"{user}/{problem}/{session}").properties.get(key, "")

    def hasSessionProperty(
        self, user: str, problem: str, session: str, key: str
    ) -> bool:
        self.calls += 1
        return key in self.store.node(f"{user}/{problem}/{session}").properties

    def removeSessionProperty(
        self, user: str, problem: str, session: str, key: str
    ) -> bool:
        self.calls += 1
        return (
            self.store.node(f"{user}/{problem}/{session}").properties.pop(key, None)
            is not None
        )

    def listSessionProperties(self, user: str, problem: str, session: str) -> list[str]:
        self.calls += 1
        return sorted(self.store.node(f"{user}/{problem}/{session}").properties)

    def clearSessionProperties(self, user: str, problem: str, session: str) -> bool:
        self.calls += 1
        self.store.node(f"{user}/{problem}/{session}").properties.clear()
        return True

    # ---- archival ----------------------------------------------------------------------

    def archiveSession(self, user: str, problem: str, session: str) -> str:
        """Snapshot a session for later recovery; returns the archive key."""
        self.calls += 1
        node = self.store.node(f"{user}/{problem}/{session}")
        key = f"{user}/{problem}/{session}@{self.store.clock.now:.3f}"
        self.store.archives[key] = ContextNode.from_xml(
            node.to_xml(), now=self.store.clock.now
        )
        return key

    def restoreSession(self, archive_key: str, user: str, problem: str, session: str) -> bool:
        """Recover an archived session into the live tree (users 'can recover
        and edit old sessions later')."""
        self.calls += 1
        snapshot = self.store.archives.get(archive_key)
        if snapshot is None:
            raise ContextError(f"no archive {archive_key!r}")
        clone = ContextNode.from_xml(snapshot.to_xml(), now=self.store.clock.now)
        clone.name = session
        parent = self.store.create(f"{user}/{problem}")
        parent.children[session] = clone
        return True

    def listArchivedSessions(self, user: str) -> list[str]:
        self.calls += 1
        return sorted(k for k in self.store.archives if k.startswith(user + "/"))

    def removeArchivedSession(self, archive_key: str) -> bool:
        self.calls += 1
        if archive_key not in self.store.archives:
            raise ContextError(f"no archive {archive_key!r}")
        del self.store.archives[archive_key]
        return True

    def exportSessionXml(self, user: str, problem: str, session: str) -> str:
        self.calls += 1
        return self.store.node(f"{user}/{problem}/{session}").to_xml().serialize()

    def importSessionXml(self, user: str, problem: str, xml: str) -> str:
        self.calls += 1
        node = ContextNode.from_xml(xml, now=self.store.clock.now)
        parent = self.store.create(f"{user}/{problem}")
        parent.children[node.name] = node
        return f"{user}/{problem}/{node.name}"

    def getArchiveCount(self) -> int:
        self.calls += 1
        return len(self.store.archives)

    def purgeArchive(self, user: str) -> int:
        self.calls += 1
        keys = [k for k in self.store.archives if k.startswith(user + "/")]
        for key in keys:
            del self.store.archives[key]
        return len(keys)

    # ---- placeholder contexts (the HotPage workaround) -------------------------------------

    def createPlaceholderContext(self) -> str:
        """The §3 workaround: "we needed to create artificial contexts
        (sessions) for HotPage users".  Creates a throwaway
        user/problem/session path for a stateless caller."""
        self.calls += 1
        n = next(self.store._placeholder_ids)
        path = f"__placeholder__/anonymous/session-{n:06d}"
        self.store.create(path, placeholder=True)
        return path

    def isPlaceholder(self, path: str) -> bool:
        self.calls += 1
        return self.store.node(path).placeholder

    def removePlaceholder(self, path: str) -> bool:
        self.calls += 1
        if not self.store.node(path).placeholder:
            raise ContextError(f"{path!r} is not a placeholder context")
        self.store.remove(path)
        return True

    def placeholderCount(self) -> int:
        self.calls += 1
        root = self.store.root.children.get("__placeholder__")
        if root is None:
            return 0
        return sum(len(problem.children) for problem in root.children.values())

    # ---- module contexts (service implementations live in contexts too) ----------------------

    def registerModule(self, name: str, descriptor: str) -> bool:
        """Gateway modules (service implementations) also exist in contexts."""
        self.calls += 1
        node = self.store.create(f"__modules__/{name}")
        node.descriptor = descriptor
        return True

    def unregisterModule(self, name: str) -> bool:
        self.calls += 1
        self.store.remove(f"__modules__/{name}")
        return True

    def listModules(self) -> list[str]:
        self.calls += 1
        modules = self.store.root.children.get("__modules__")
        return sorted(modules.children) if modules else []

    def hasModule(self, name: str) -> bool:
        self.calls += 1
        return self.store.exists(f"__modules__/{name}")

    def getModuleProperty(self, name: str, key: str) -> str:
        self.calls += 1
        return self.store.node(f"__modules__/{name}").properties.get(key, "")

    def setModuleProperty(self, name: str, key: str, value: str) -> bool:
        self.calls += 1
        self.store.node(f"__modules__/{name}").properties[key] = value
        return True


# ---------------------------------------------------------------------------
# The decomposition the paper recommends
# ---------------------------------------------------------------------------


class UserContextService:
    """Hierarchy CRUD on generic paths — one small interface."""

    def __init__(self, store: ContextStore):
        self.store = store

    def create(self, path: str) -> str:
        """Create a context (and intermediate levels) at *path*."""
        self.store.create(path)
        return path

    def remove(self, path: str) -> bool:
        self.store.remove(path)
        return True

    def exists(self, path: str) -> bool:
        return self.store.exists(path)

    def list(self, path: str) -> list[str]:
        return sorted(self.store.node(path).children)

    def rename(self, path: str, new_name: str) -> bool:
        self.store.rename(path, new_name)
        return True

    def info(self, path: str) -> dict[str, Any]:
        node = self.store.node(path)
        return {
            "name": node.name,
            "created": node.created,
            "modified": node.modified,
            "children": len(node.children),
        }


class PropertyService:
    """Key/value properties on any context path."""

    def __init__(self, store: ContextStore):
        self.store = store

    def set(self, path: str, key: str, value: str) -> bool:
        node = self.store.node(path)
        node.properties[key] = value
        node.modified = self.store.clock.now
        return True

    def get(self, path: str, key: str) -> str:
        return self.store.node(path).properties.get(key, "")

    def remove(self, path: str, key: str) -> bool:
        return self.store.node(path).properties.pop(key, None) is not None

    def list(self, path: str) -> list[str]:
        return sorted(self.store.node(path).properties)


class SessionArchiveService:
    """Archival/recovery of session subtrees."""

    def __init__(self, store: ContextStore):
        self.store = store

    def archive(self, path: str) -> str:
        node = self.store.node(path)
        key = f"{path.strip('/')}@{self.store.clock.now:.3f}"
        self.store.archives[key] = ContextNode.from_xml(
            node.to_xml(), now=self.store.clock.now
        )
        return key

    def restore(self, archive_key: str, path: str) -> bool:
        snapshot = self.store.archives.get(archive_key)
        if snapshot is None:
            raise ContextError(f"no archive {archive_key!r}")
        parts = path.strip("/").split("/")
        clone = ContextNode.from_xml(snapshot.to_xml(), now=self.store.clock.now)
        clone.name = parts[-1]
        parent = self.store.create("/".join(parts[:-1])) if parts[:-1] else self.store.root
        parent.children[parts[-1]] = clone
        return True

    def list(self, prefix: str) -> list[str]:
        return sorted(k for k in self.store.archives if k.startswith(prefix))

    def export_xml(self, path: str) -> str:
        return self.store.node(path).to_xml().serialize()

    def import_xml(self, parent_path: str, xml: str) -> str:
        node = ContextNode.from_xml(xml, now=self.store.clock.now)
        parent = self.store.create(parent_path)
        parent.children[node.name] = node
        return f"{parent_path.strip('/')}/{node.name}"


def deploy_context_manager(
    network: VirtualNetwork,
    host: str = "gateway.iu.edu",
    *,
    store: ContextStore | None = None,
    server: HttpServer | None = None,
) -> tuple[ContextManagerService, str]:
    """Deploy the monolith; returns (impl, endpoint URL)."""
    impl = ContextManagerService(store, network.clock)
    server = server or HttpServer(host, network)
    soap = SoapService("ContextManager", CONTEXT_NAMESPACE)
    soap.expose_object(impl)
    return impl, soap.mount(server, "/context")


def deploy_replicated_context_manager(
    network: VirtualNetwork,
    hosts: tuple[str, ...] = ("context1.iu.edu", "context2.sdsc.edu"),
    *,
    store: ContextStore | None = None,
) -> tuple[ContextStore, list[str]]:
    """Deploy the context manager on several hosts over one shared store.

    The replicas are interchangeable front-ends — the paper's provider
    substitution applied to a *stateful* service: because state lives in the
    shared store, a :class:`repro.resilience.failover.FailoverClient` can
    rotate to a surviving replica mid-session without losing contexts.
    Returns (the shared store, one endpoint URL per replica).
    """
    store = store or ContextStore(network.clock)
    endpoints = [
        deploy_context_manager(network, host, store=store)[1] for host in hosts
    ]
    return store, endpoints


def deploy_decomposed_context_services(
    network: VirtualNetwork,
    host: str = "contexts.iu.edu",
    *,
    store: ContextStore | None = None,
) -> dict[str, str]:
    """Deploy the three decomposed services on one host; returns
    service-name -> endpoint URL."""
    store = store or ContextStore(network.clock)
    server = HttpServer(host, network)
    endpoints: dict[str, str] = {}
    for name, namespace, impl, path in (
        ("user-context", USERCTX_NAMESPACE, UserContextService(store), "/user-context"),
        ("property", PROPERTY_NAMESPACE, PropertyService(store), "/property"),
        ("session-archive", ARCHIVE_NAMESPACE, SessionArchiveService(store), "/archive"),
    ):
        soap = SoapService(name, namespace)
        soap.expose_object(impl)
        endpoints[name] = soap.mount(server, path)
    return endpoints
