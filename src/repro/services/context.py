"""The context (session) management service (§3.3).

Gateway "implements a service for capturing and organizing the user's
session (or context) for archival purposes ... We organize context in a
container structure that can be mapped to a directory structure such as the
Unix file system ... separate contexts for each user, and subdivide the user
contexts into problem contexts, which are further divided into session
contexts."

Two deployment styles, because the paper critiques its own service:

- :class:`ContextManagerService` — the faithful monolith.  "Also notable is
  that this service contained over 60 methods ... To implement this
  properly, the service will have to be broken up into more reasonable
  parts."  It also reproduces the placeholder-context workaround: "we were
  forced to create placeholder contexts in our SOAP wrappers" for stateless
  (HotPage-style) callers.
- :class:`UserContextService` / :class:`PropertyService` /
  :class:`SessionArchiveService` — the decomposition the paper calls for.

Experiment C4 compares the two.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.faults import ContextError
from repro.soap.server import SoapService
from repro.transport.clock import SimClock
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer
from repro.xmlutil.element import XmlElement, parse_xml

CONTEXT_NAMESPACE = "urn:iu:context-manager"
USERCTX_NAMESPACE = "urn:gce:user-context"
PROPERTY_NAMESPACE = "urn:gce:context-property"
ARCHIVE_NAMESPACE = "urn:gce:session-archive"


@dataclass
class ContextNode:
    """A node in the context tree."""

    name: str
    created: float = 0.0
    modified: float = 0.0
    placeholder: bool = False
    descriptor: str = ""
    properties: dict[str, str] = field(default_factory=dict)
    children: dict[str, "ContextNode"] = field(default_factory=dict)

    def to_xml(self) -> XmlElement:
        node = XmlElement("context", {"name": self.name})
        if self.placeholder:
            node.set("placeholder", "true")
        for key, value in sorted(self.properties.items()):
            node.child("property", text=value).set("key", key)
        if self.descriptor:
            node.child("descriptor", text=self.descriptor)
        for name in sorted(self.children):
            node.append(self.children[name].to_xml())
        return node

    @staticmethod
    def from_xml(source: str | XmlElement, *, now: float = 0.0) -> "ContextNode":
        el = parse_xml(source) if isinstance(source, str) else source
        if el.tag.local != "context":
            raise ContextError(f"not a context element: {el.tag}")
        node = ContextNode(
            name=el.get("name", "") or "",
            created=now,
            modified=now,
            placeholder=(el.get("placeholder") == "true"),
            descriptor=el.findtext("descriptor"),
        )
        for prop in el.findall("property"):
            node.properties[prop.get("key", "") or ""] = prop.text
        for child in el.findall("context"):
            sub = ContextNode.from_xml(child, now=now)
            node.children[sub.name] = sub
        return node


class ContextStore:
    """The shared tree: user -> problem -> session, plus archives.

    Every mutation funnels through this class, which is what makes the
    store journal-able: with a ``journal`` attached, each successful
    mutation appends one ``ctx-*`` record, and a fresh store can
    :meth:`replay` the log to rebuild the exact tree a crashed incarnation
    held (timestamps excepted — they are process state, not durable state).
    """

    def __init__(self, clock: SimClock | None = None, *, journal=None):
        self.clock = clock or SimClock()
        self.root = ContextNode("", created=self.clock.now, modified=self.clock.now)
        self.archives: dict[str, ContextNode] = {}
        self._placeholder_ids = itertools.count(1)
        self.journal = journal
        self._replaying = False

    def _journal(self, kind: str, **data) -> None:
        if self.journal is not None and not self._replaying:
            self.journal.append(kind, **data)

    # -- generic node algebra -----------------------------------------------------

    def node(self, path: str) -> ContextNode:
        current = self.root
        for part in self._parts(path):
            child = current.children.get(part)
            if child is None:
                raise ContextError(f"no context {path!r}", {"path": path})
            current = child
        return current

    def exists(self, path: str) -> bool:
        try:
            self.node(path)
            return True
        except ContextError:
            return False

    def create(self, path: str, *, placeholder: bool = False) -> ContextNode:
        current = self.root
        now = self.clock.now
        for part in self._parts(path):
            if part not in current.children:
                current.children[part] = ContextNode(
                    part, created=now, modified=now, placeholder=placeholder
                )
            current = current.children[part]
        self._journal("ctx-create", path=path, placeholder=placeholder)
        return current

    def remove(self, path: str) -> None:
        parts = self._parts(path)
        if not parts:
            raise ContextError("cannot remove the root context")
        parent = self.node("/".join(parts[:-1]))
        if parts[-1] not in parent.children:
            raise ContextError(f"no context {path!r}", {"path": path})
        del parent.children[parts[-1]]
        parent.modified = self.clock.now
        self._journal("ctx-remove", path=path)

    def rename(self, path: str, new_name: str) -> None:
        parts = self._parts(path)
        if not parts:
            raise ContextError("cannot rename the root context")
        parent = self.node("/".join(parts[:-1]))
        if new_name in parent.children:
            raise ContextError(f"context {new_name!r} already exists")
        node = parent.children.pop(parts[-1], None)
        if node is None:
            raise ContextError(f"no context {path!r}", {"path": path})
        node.name = new_name
        node.modified = self.clock.now
        parent.children[new_name] = node
        self._journal("ctx-rename", path=path, new=new_name)

    def copy(self, src: str, dst: str) -> None:
        node = self.node(src)
        clone = ContextNode.from_xml(node.to_xml(), now=self.clock.now)
        parts = self._parts(dst)
        parent = self.create("/".join(parts[:-1])) if parts[:-1] else self.root
        clone.name = parts[-1]
        parent.children[parts[-1]] = clone
        self._journal("ctx-copy", src=src, dst=dst)

    def move(self, src: str, dst: str) -> None:
        self.copy(src, dst)
        self.remove(src)

    # -- journaled leaf mutations (properties, descriptors, archives) -------

    def touch(self, path: str) -> None:
        self.node(path).modified = self.clock.now

    def set_property(self, path: str, key: str, value: str) -> None:
        node = self.node(path)
        node.properties[key] = value
        node.modified = self.clock.now
        self._journal("ctx-prop-set", path=path, key=key, value=value)

    def remove_property(self, path: str, key: str) -> bool:
        node = self.node(path)
        removed = node.properties.pop(key, None) is not None
        if removed:
            node.modified = self.clock.now
            self._journal("ctx-prop-del", path=path, key=key)
        return removed

    def clear_properties(self, path: str) -> None:
        node = self.node(path)
        node.properties.clear()
        node.modified = self.clock.now
        self._journal("ctx-prop-clear", path=path)

    def set_descriptor(self, path: str, descriptor: str) -> None:
        node = self.node(path)
        node.descriptor = descriptor
        node.modified = self.clock.now
        self._journal("ctx-desc", path=path, descriptor=descriptor)

    def archive(self, path: str, *, key: str = "") -> str:
        node = self.node(path)
        key = key or f"{path.strip('/')}@{self.clock.now:.3f}"
        self.archives[key] = ContextNode.from_xml(node.to_xml(), now=self.clock.now)
        self._journal("ctx-archive", key=key, xml=node.to_xml().serialize())
        return key

    def restore(self, archive_key: str, path: str) -> None:
        snapshot = self.archives.get(archive_key)
        if snapshot is None:
            raise ContextError(f"no archive {archive_key!r}")
        parts = self._parts(path)
        clone = ContextNode.from_xml(snapshot.to_xml(), now=self.clock.now)
        clone.name = parts[-1]
        parent = self.create("/".join(parts[:-1])) if parts[:-1] else self.root
        parent.children[parts[-1]] = clone
        self._journal("ctx-restore", key=archive_key, path=path)

    def remove_archive(self, archive_key: str) -> None:
        if archive_key not in self.archives:
            raise ContextError(f"no archive {archive_key!r}")
        del self.archives[archive_key]
        self._journal("ctx-archive-del", key=archive_key)

    def import_node(self, parent_path: str, xml: str) -> str:
        node = ContextNode.from_xml(xml, now=self.clock.now)
        parent = self.create(parent_path)
        parent.children[node.name] = node
        self._journal("ctx-import", parent=parent_path, xml=xml)
        return f"{parent_path.strip('/')}/{node.name}"

    # -- durability (the Recoverable protocol) -------------------------------

    def snapshot(self) -> dict:
        """Comparable durable state: the serialized tree plus archives
        (timestamps excluded — they are not journaled)."""
        return {
            "tree": self.root.to_xml().serialize(),
            "archives": {
                key: node.to_xml().serialize()
                for key, node in sorted(self.archives.items())
            },
        }

    def replay(self, journal) -> int:
        """Rebuild the tree from a previous incarnation's journal."""
        self.journal = journal
        self._replaying = True
        applied = 0
        max_placeholder = 0
        try:
            for record in journal.records():
                kind, data = record.kind, record.data
                if kind == "ctx-create":
                    self.create(
                        data["path"], placeholder=bool(data.get("placeholder"))
                    )
                    parts = self._parts(data["path"])
                    if (
                        parts
                        and parts[0] == "__placeholder__"
                        and parts[-1].startswith("session-")
                        and parts[-1][len("session-"):].isdigit()
                    ):
                        max_placeholder = max(
                            max_placeholder, int(parts[-1][len("session-"):])
                        )
                elif kind == "ctx-remove":
                    self.remove(data["path"])
                elif kind == "ctx-rename":
                    self.rename(data["path"], data["new"])
                elif kind == "ctx-copy":
                    self.copy(data["src"], data["dst"])
                elif kind == "ctx-prop-set":
                    self.set_property(data["path"], data["key"], data["value"])
                elif kind == "ctx-prop-del":
                    self.remove_property(data["path"], data["key"])
                elif kind == "ctx-prop-clear":
                    self.clear_properties(data["path"])
                elif kind == "ctx-desc":
                    self.set_descriptor(data["path"], data["descriptor"])
                elif kind == "ctx-archive":
                    self.archives[data["key"]] = ContextNode.from_xml(
                        data["xml"], now=record.t
                    )
                elif kind == "ctx-restore":
                    self.restore(data["key"], data["path"])
                elif kind == "ctx-archive-del":
                    self.archives.pop(data["key"], None)
                elif kind == "ctx-import":
                    self.import_node(data["parent"], data["xml"])
                else:
                    continue
                applied += 1
            self._placeholder_ids = itertools.count(max_placeholder + 1)
        finally:
            self._replaying = False
        return applied

    @staticmethod
    def _parts(path: str) -> list[str]:
        return [p for p in path.strip("/").split("/") if p]


class ContextManagerService:
    """The faithful 60+-method Gateway context manager monolith.

    Method naming follows the original's level-specific style — one family
    of methods per hierarchy level — which is exactly why the interface
    ballooned.  Paths: user / user+problem / user+problem+session.
    """

    def __init__(self, store: ContextStore | None = None, clock: SimClock | None = None):
        self.store = store or ContextStore(clock)
        self.calls = 0

    def _touch(self, path: str) -> None:
        self.store.touch(path)

    # ---- user contexts -------------------------------------------------------

    def createUserContext(self, user: str) -> str:
        """Create a top-level context for a portal user."""
        self.calls += 1
        self.store.create(user)
        return user

    def removeUserContext(self, user: str) -> bool:
        self.calls += 1
        self.store.remove(user)
        return True

    def hasUserContext(self, user: str) -> bool:
        self.calls += 1
        return self.store.exists(user)

    def listUserContexts(self) -> list[str]:
        self.calls += 1
        return sorted(self.store.root.children)

    def renameUserContext(self, user: str, new_name: str) -> bool:
        self.calls += 1
        self.store.rename(user, new_name)
        return True

    def getUserCreated(self, user: str) -> float:
        self.calls += 1
        return self.store.node(user).created

    def getUserModified(self, user: str) -> float:
        self.calls += 1
        return self.store.node(user).modified

    def touchUser(self, user: str) -> bool:
        self.calls += 1
        self._touch(user)
        return True

    def countProblems(self, user: str) -> int:
        self.calls += 1
        return len(self.store.node(user).children)

    def exportUserXml(self, user: str) -> str:
        self.calls += 1
        return self.store.node(user).to_xml().serialize()

    # ---- problem contexts --------------------------------------------------------

    def createProblemContext(self, user: str, problem: str) -> str:
        """Create a problem context under a user."""
        self.calls += 1
        if not self.store.exists(user):
            raise ContextError(f"no user context {user!r}")
        self.store.create(f"{user}/{problem}")
        return f"{user}/{problem}"

    def removeProblemContext(self, user: str, problem: str) -> bool:
        self.calls += 1
        self.store.remove(f"{user}/{problem}")
        return True

    def hasProblemContext(self, user: str, problem: str) -> bool:
        self.calls += 1
        return self.store.exists(f"{user}/{problem}")

    def listProblemContexts(self, user: str) -> list[str]:
        self.calls += 1
        return sorted(self.store.node(user).children)

    def renameProblemContext(self, user: str, problem: str, new_name: str) -> bool:
        self.calls += 1
        self.store.rename(f"{user}/{problem}", new_name)
        return True

    def getProblemCreated(self, user: str, problem: str) -> float:
        self.calls += 1
        return self.store.node(f"{user}/{problem}").created

    def getProblemModified(self, user: str, problem: str) -> float:
        self.calls += 1
        return self.store.node(f"{user}/{problem}").modified

    def touchProblem(self, user: str, problem: str) -> bool:
        self.calls += 1
        self._touch(f"{user}/{problem}")
        return True

    def countSessions(self, user: str, problem: str) -> int:
        self.calls += 1
        return len(self.store.node(f"{user}/{problem}").children)

    def copyProblemContext(self, user: str, problem: str, new_name: str) -> bool:
        self.calls += 1
        self.store.copy(f"{user}/{problem}", f"{user}/{new_name}")
        return True

    # ---- session contexts -----------------------------------------------------------

    def createSessionContext(self, user: str, problem: str, session: str) -> str:
        """Create a session context under a problem."""
        self.calls += 1
        if not self.store.exists(f"{user}/{problem}"):
            raise ContextError(f"no problem context {user}/{problem}")
        self.store.create(f"{user}/{problem}/{session}")
        return f"{user}/{problem}/{session}"

    def removeSessionContext(self, user: str, problem: str, session: str) -> bool:
        self.calls += 1
        self.store.remove(f"{user}/{problem}/{session}")
        return True

    def hasSessionContext(self, user: str, problem: str, session: str) -> bool:
        self.calls += 1
        return self.store.exists(f"{user}/{problem}/{session}")

    def listSessionContexts(self, user: str, problem: str) -> list[str]:
        self.calls += 1
        return sorted(self.store.node(f"{user}/{problem}").children)

    def renameSessionContext(
        self, user: str, problem: str, session: str, new_name: str
    ) -> bool:
        self.calls += 1
        self.store.rename(f"{user}/{problem}/{session}", new_name)
        return True

    def getSessionCreated(self, user: str, problem: str, session: str) -> float:
        self.calls += 1
        return self.store.node(f"{user}/{problem}/{session}").created

    def getSessionModified(self, user: str, problem: str, session: str) -> float:
        self.calls += 1
        return self.store.node(f"{user}/{problem}/{session}").modified

    def touchSession(self, user: str, problem: str, session: str) -> bool:
        self.calls += 1
        self._touch(f"{user}/{problem}/{session}")
        return True

    def copySessionContext(
        self, user: str, problem: str, session: str, new_name: str
    ) -> bool:
        self.calls += 1
        self.store.copy(
            f"{user}/{problem}/{session}", f"{user}/{problem}/{new_name}"
        )
        return True

    def moveSessionContext(
        self, user: str, problem: str, session: str, new_problem: str
    ) -> bool:
        self.calls += 1
        self.store.move(
            f"{user}/{problem}/{session}", f"{user}/{new_problem}/{session}"
        )
        return True

    def getSessionDescriptor(self, user: str, problem: str, session: str) -> str:
        """The application-instance descriptor XML archived in the session."""
        self.calls += 1
        return self.store.node(f"{user}/{problem}/{session}").descriptor

    def setSessionDescriptor(
        self, user: str, problem: str, session: str, descriptor: str
    ) -> bool:
        self.calls += 1
        self.store.set_descriptor(f"{user}/{problem}/{session}", descriptor)
        return True

    # ---- properties, one family per level --------------------------------------------

    def setUserProperty(self, user: str, key: str, value: str) -> bool:
        self.calls += 1
        self.store.set_property(user, key, value)
        return True

    def getUserProperty(self, user: str, key: str) -> str:
        self.calls += 1
        return self.store.node(user).properties.get(key, "")

    def hasUserProperty(self, user: str, key: str) -> bool:
        self.calls += 1
        return key in self.store.node(user).properties

    def removeUserProperty(self, user: str, key: str) -> bool:
        self.calls += 1
        return self.store.remove_property(user, key)

    def listUserProperties(self, user: str) -> list[str]:
        self.calls += 1
        return sorted(self.store.node(user).properties)

    def clearUserProperties(self, user: str) -> bool:
        self.calls += 1
        self.store.clear_properties(user)
        return True

    def setProblemProperty(self, user: str, problem: str, key: str, value: str) -> bool:
        self.calls += 1
        self.store.set_property(f"{user}/{problem}", key, value)
        return True

    def getProblemProperty(self, user: str, problem: str, key: str) -> str:
        self.calls += 1
        return self.store.node(f"{user}/{problem}").properties.get(key, "")

    def hasProblemProperty(self, user: str, problem: str, key: str) -> bool:
        self.calls += 1
        return key in self.store.node(f"{user}/{problem}").properties

    def removeProblemProperty(self, user: str, problem: str, key: str) -> bool:
        self.calls += 1
        return self.store.remove_property(f"{user}/{problem}", key)

    def listProblemProperties(self, user: str, problem: str) -> list[str]:
        self.calls += 1
        return sorted(self.store.node(f"{user}/{problem}").properties)

    def clearProblemProperties(self, user: str, problem: str) -> bool:
        self.calls += 1
        self.store.clear_properties(f"{user}/{problem}")
        return True

    def setSessionProperty(
        self, user: str, problem: str, session: str, key: str, value: str
    ) -> bool:
        self.calls += 1
        self.store.set_property(f"{user}/{problem}/{session}", key, value)
        return True

    def getSessionProperty(
        self, user: str, problem: str, session: str, key: str
    ) -> str:
        self.calls += 1
        return self.store.node(f"{user}/{problem}/{session}").properties.get(key, "")

    def hasSessionProperty(
        self, user: str, problem: str, session: str, key: str
    ) -> bool:
        self.calls += 1
        return key in self.store.node(f"{user}/{problem}/{session}").properties

    def removeSessionProperty(
        self, user: str, problem: str, session: str, key: str
    ) -> bool:
        self.calls += 1
        return self.store.remove_property(f"{user}/{problem}/{session}", key)

    def listSessionProperties(self, user: str, problem: str, session: str) -> list[str]:
        self.calls += 1
        return sorted(self.store.node(f"{user}/{problem}/{session}").properties)

    def clearSessionProperties(self, user: str, problem: str, session: str) -> bool:
        self.calls += 1
        self.store.clear_properties(f"{user}/{problem}/{session}")
        return True

    # ---- archival ----------------------------------------------------------------------

    def archiveSession(self, user: str, problem: str, session: str) -> str:
        """Snapshot a session for later recovery; returns the archive key."""
        self.calls += 1
        return self.store.archive(f"{user}/{problem}/{session}")

    def restoreSession(self, archive_key: str, user: str, problem: str, session: str) -> bool:
        """Recover an archived session into the live tree (users 'can recover
        and edit old sessions later')."""
        self.calls += 1
        self.store.restore(archive_key, f"{user}/{problem}/{session}")
        return True

    def listArchivedSessions(self, user: str) -> list[str]:
        self.calls += 1
        return sorted(k for k in self.store.archives if k.startswith(user + "/"))

    def removeArchivedSession(self, archive_key: str) -> bool:
        self.calls += 1
        self.store.remove_archive(archive_key)
        return True

    def exportSessionXml(self, user: str, problem: str, session: str) -> str:
        self.calls += 1
        return self.store.node(f"{user}/{problem}/{session}").to_xml().serialize()

    def importSessionXml(self, user: str, problem: str, xml: str) -> str:
        self.calls += 1
        return self.store.import_node(f"{user}/{problem}", xml)

    def getArchiveCount(self) -> int:
        self.calls += 1
        return len(self.store.archives)

    def purgeArchive(self, user: str) -> int:
        self.calls += 1
        keys = [k for k in self.store.archives if k.startswith(user + "/")]
        for key in keys:
            self.store.remove_archive(key)
        return len(keys)

    # ---- placeholder contexts (the HotPage workaround) -------------------------------------

    def createPlaceholderContext(self) -> str:
        """The §3 workaround: "we needed to create artificial contexts
        (sessions) for HotPage users".  Creates a throwaway
        user/problem/session path for a stateless caller."""
        self.calls += 1
        n = next(self.store._placeholder_ids)
        path = f"__placeholder__/anonymous/session-{n:06d}"
        self.store.create(path, placeholder=True)
        return path

    def isPlaceholder(self, path: str) -> bool:
        self.calls += 1
        return self.store.node(path).placeholder

    def removePlaceholder(self, path: str) -> bool:
        self.calls += 1
        if not self.store.node(path).placeholder:
            raise ContextError(f"{path!r} is not a placeholder context")
        self.store.remove(path)
        return True

    def placeholderCount(self) -> int:
        self.calls += 1
        root = self.store.root.children.get("__placeholder__")
        if root is None:
            return 0
        # a sum is order-independent, so insertion-order iteration is harmless here
        return sum(len(problem.children) for problem in root.children.values())  # repro: ignore[REP104]

    # ---- module contexts (service implementations live in contexts too) ----------------------

    def registerModule(self, name: str, descriptor: str) -> bool:
        """Gateway modules (service implementations) also exist in contexts."""
        self.calls += 1
        self.store.create(f"__modules__/{name}")
        self.store.set_descriptor(f"__modules__/{name}", descriptor)
        return True

    def unregisterModule(self, name: str) -> bool:
        self.calls += 1
        self.store.remove(f"__modules__/{name}")
        return True

    def listModules(self) -> list[str]:
        self.calls += 1
        modules = self.store.root.children.get("__modules__")
        return sorted(modules.children) if modules else []

    def hasModule(self, name: str) -> bool:
        self.calls += 1
        return self.store.exists(f"__modules__/{name}")

    def getModuleProperty(self, name: str, key: str) -> str:
        self.calls += 1
        return self.store.node(f"__modules__/{name}").properties.get(key, "")

    def setModuleProperty(self, name: str, key: str, value: str) -> bool:
        self.calls += 1
        self.store.set_property(f"__modules__/{name}", key, value)
        return True


# ---------------------------------------------------------------------------
# The decomposition the paper recommends
# ---------------------------------------------------------------------------


class UserContextService:
    """Hierarchy CRUD on generic paths — one small interface."""

    def __init__(self, store: ContextStore):
        self.store = store

    def create(self, path: str) -> str:
        """Create a context (and intermediate levels) at *path*."""
        self.store.create(path)
        return path

    def remove(self, path: str) -> bool:
        self.store.remove(path)
        return True

    def exists(self, path: str) -> bool:
        return self.store.exists(path)

    def list(self, path: str) -> list[str]:
        return sorted(self.store.node(path).children)

    def rename(self, path: str, new_name: str) -> bool:
        self.store.rename(path, new_name)
        return True

    def info(self, path: str) -> dict[str, Any]:
        node = self.store.node(path)
        return {
            "name": node.name,
            "created": node.created,
            "modified": node.modified,
            "children": len(node.children),
        }


class PropertyService:
    """Key/value properties on any context path."""

    def __init__(self, store: ContextStore):
        self.store = store

    def set(self, path: str, key: str, value: str) -> bool:
        self.store.set_property(path, key, value)
        return True

    def get(self, path: str, key: str) -> str:
        return self.store.node(path).properties.get(key, "")

    def remove(self, path: str, key: str) -> bool:
        return self.store.remove_property(path, key)

    def list(self, path: str) -> list[str]:
        return sorted(self.store.node(path).properties)


class SessionArchiveService:
    """Archival/recovery of session subtrees."""

    def __init__(self, store: ContextStore):
        self.store = store

    def archive(self, path: str) -> str:
        return self.store.archive(path)

    def restore(self, archive_key: str, path: str) -> bool:
        self.store.restore(archive_key, path)
        return True

    def list(self, prefix: str) -> list[str]:
        return sorted(k for k in self.store.archives if k.startswith(prefix))

    def export_xml(self, path: str) -> str:
        return self.store.node(path).to_xml().serialize()

    def import_xml(self, parent_path: str, xml: str) -> str:
        return self.store.import_node(parent_path, xml)


def deploy_context_manager(
    network: VirtualNetwork,
    host: str = "gateway.iu.edu",
    *,
    store: ContextStore | None = None,
    server: HttpServer | None = None,
    durable: bool = False,
) -> tuple[ContextManagerService, str]:
    """Deploy the monolith; returns (impl, endpoint URL).

    With ``durable=True`` every context mutation is journalled to the
    host's disk; deploying again on the same host replays the journal, so
    a crash loses no committed context state.
    """
    if durable and store is None:
        from repro.durability.journal import Journal

        journal = Journal(network.disk(host), "context", clock=network.clock)
        store = ContextStore(network.clock)
        if len(journal):
            store.replay(journal)
        else:
            store.journal = journal
    impl = ContextManagerService(store, network.clock)
    server = server or HttpServer(host, network)
    soap = SoapService("ContextManager", CONTEXT_NAMESPACE)
    soap.expose_object(impl)
    return impl, soap.mount(server, "/context")


def deploy_replicated_context_manager(
    network: VirtualNetwork,
    hosts: tuple[str, ...] = ("context1.iu.edu", "context2.sdsc.edu"),
    *,
    store: ContextStore | None = None,
    durable: bool = False,
) -> tuple[ContextStore, list[str]]:
    """Deploy the context manager on several hosts over one shared store.

    The replicas are interchangeable front-ends — the paper's provider
    substitution applied to a *stateful* service: because state lives in the
    shared store, a :class:`repro.resilience.failover.FailoverClient` can
    rotate to a surviving replica mid-session without losing contexts.
    With ``durable=True`` the shared store journals to the first host's
    disk.  Returns (the shared store, one endpoint URL per replica).
    """
    if durable and store is None:
        from repro.durability.journal import Journal

        journal = Journal(network.disk(hosts[0]), "context", clock=network.clock)
        store = ContextStore(network.clock)
        if len(journal):
            store.replay(journal)
        else:
            store.journal = journal
    store = store or ContextStore(network.clock)
    endpoints = [
        deploy_context_manager(network, host, store=store)[1] for host in hosts
    ]
    return store, endpoints


def deploy_decomposed_context_services(
    network: VirtualNetwork,
    host: str = "contexts.iu.edu",
    *,
    store: ContextStore | None = None,
) -> dict[str, str]:
    """Deploy the three decomposed services on one host; returns
    service-name -> endpoint URL."""
    store = store or ContextStore(network.clock)
    server = HttpServer(host, network)
    endpoints: dict[str, str] = {}
    for name, namespace, impl, path in (
        ("user-context", USERCTX_NAMESPACE, UserContextService(store), "/user-context"),
        ("property", PROPERTY_NAMESPACE, PropertyService(store), "/property"),
        ("session-archive", ARCHIVE_NAMESPACE, SessionArchiveService(store), "/archive"),
    ):
        soap = SoapService(name, namespace)
        soap.expose_object(impl)
        endpoints[name] = soap.mount(server, path)
    return endpoints
