"""The job-monitoring core service.

§5.4: a portal aggregates "interfaces to core services such as file
transfer or job monitoring that may interest a user", and the application
descriptor schema (:mod:`repro.appws.schemas`) lists ``monitoring`` among
the bindable core services.  This module provides that service: a SOAP face
over the grid testbed's schedulers offering qstat-style views, per-job
status, and grid-wide load — plus a ready-made portlet rendering it.
"""

from __future__ import annotations

import html
from typing import Any

from repro.faults import ResourceNotFoundError
from repro.grid.resources import ComputeResource
from repro.portlets.base import Portlet
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer

MONITORING_NAMESPACE = "urn:gce:job-monitoring"


class JobMonitoringService:
    """Aggregated, read-only views over every testbed scheduler, plus the
    portal-wide resilience event stream (retries, breaker trips, failovers
    — see :mod:`repro.resilience.events`)."""

    def __init__(
        self,
        resources: dict[str, ComputeResource],
        resilience_log=None,
        network: VirtualNetwork | None = None,
        observability=None,
        load=None,
        replication=None,
    ):
        self.resources = resources
        self.resilience_log = resilience_log
        #: lets the recovery views inventory journals on host disks
        self.network = network
        #: explicit bundle, falling back to the network's ambient one
        self.observability = observability
        #: a :class:`repro.loadmgmt.LoadRegistry` of admission controllers
        self.load = load
        #: a :class:`repro.replication.MultiRegionReplication` topology
        self.replication = replication
        self.queries_served = 0

    def _obs(self):
        if self.observability is not None:
            return self.observability
        return getattr(self.network, "observability", None)

    def _resource(self, host: str) -> ComputeResource:
        resource = self.resources.get(host)
        if resource is None:
            raise ResourceNotFoundError(
                f"monitoring knows no resource {host!r}", {"host": host}
            )
        return resource

    # -- exposed methods ----------------------------------------------------------

    def hosts(self) -> list[str]:
        """The monitored compute resources."""
        return sorted(self.resources)

    def grid_load(self) -> list[dict[str, Any]]:
        """One row per resource: queuing system, cpu counts, queue depth."""
        self.queries_served += 1
        rows: list[dict[str, Any]] = []
        for host in sorted(self.resources):
            resource = self.resources[host]
            scheduler = resource.scheduler
            records = scheduler.jobs()
            rows.append({
                "host": host,
                "system": resource.queuing_system,
                "cpus": scheduler.cpus,
                "free_cpus": scheduler.free_cpus,
                "running": sum(1 for r in records if r.state.value == "running"),
                "queued": sum(1 for r in records if r.state.value == "queued"),
                "completed": scheduler.completed_count,
            })
        return rows

    def qstat(self, host: str) -> list[dict[str, Any]]:
        """The scheduler's full job table for one resource."""
        self.queries_served += 1
        return self._resource(host).scheduler.qstat()

    def job_status(self, host: str, job_id: str) -> dict[str, Any]:
        """One job's summary row (faults if unknown)."""
        self.queries_served += 1
        return self._resource(host).scheduler.job(job_id).summary()

    def user_jobs(self, logname: str) -> list[dict[str, Any]]:
        """Every job across the grid whose LOGNAME matches *logname*."""
        self.queries_served += 1
        rows: list[dict[str, Any]] = []
        for host in sorted(self.resources):
            for record in self.resources[host].scheduler.jobs():
                if record.spec.environment.get("LOGNAME") == logname:
                    rows.append(record.summary())
        return rows

    def resilience_events(self, limit: int = 0) -> list[dict[str, Any]]:
        """The portal's resilience event stream, most recent last.

        ``limit`` > 0 returns only the trailing *limit* events.
        """
        self.queries_served += 1
        if self.resilience_log is None:
            return []
        events = self.resilience_log.to_dicts()
        return events[-int(limit):] if limit and int(limit) > 0 else events

    def resilience_summary(self) -> list[dict[str, Any]]:
        """Event counts grouped by code (the portlet's headline numbers)."""
        self.queries_served += 1
        if self.resilience_log is None:
            return []
        counts: dict[str, int] = {}
        for event in self.resilience_log.events:
            counts[event.code] = counts.get(event.code, 0) + 1
        return [
            {"code": code, "count": counts[code]} for code in sorted(counts)
        ]

    # -- load-management views (see repro.loadmgmt) --------------------------------

    def load_lanes(self) -> list[dict[str, Any]]:
        """One row per (service, principal lane): weight, priority, arrival
        and shed counts, queue-wait stats — the fair-share ledger."""
        self.queries_served += 1
        if self.load is None:
            return []
        return self.load.lane_rows()

    def load_summary(self) -> list[dict[str, Any]]:
        """One headline row per admission-controlled service."""
        self.queries_served += 1
        if self.load is None:
            return []
        return self.load.summaries()

    def queue_load(self) -> list[dict[str, Any]]:
        """One row per scheduler queue across the grid: depth, running,
        completed, and trailing drain rate."""
        self.queries_served += 1
        rows: list[dict[str, Any]] = []
        for host in sorted(self.resources):
            rows.extend(self.resources[host].scheduler.queue_stats())
        return rows

    # -- replication views (see repro.replication) ---------------------------------

    def replication_summary(self) -> list[dict[str, Any]]:
        """One row per region: replication lag, hint backlog, last heal.

        Lag and backlog are sampled live from the topology, and mirrored
        into gauges (``replication_lag``, ``hint_backlog``) when the
        observability layer is installed — a level, not a flow, so the
        freshest value wins, like the queue-depth gauges above.
        """
        self.queries_served += 1
        if self.replication is None:
            return []
        last_heal = self._last_partition_heal()
        rows = self.replication.replication_rows()
        obs = self._obs()
        for row in rows:
            row["last_heal_t"] = last_heal
            if obs is not None:
                obs.metrics.set_gauge(
                    "replication_lag", row["region"], max(row["lag_s"], 0.0)
                )
                obs.metrics.set_gauge(
                    "hint_backlog", row["region"], row["hint_backlog"]
                )
        return rows

    def _last_partition_heal(self) -> float:
        """Virtual time of the most recent partition heal, or -1.0."""
        if self.resilience_log is None:
            return -1.0
        last = -1.0
        for event in self.resilience_log.events:
            if event.code == "Chaos.PartitionHeal":
                try:
                    last = max(last, float(event.detail.get("t", -1.0)))
                except (TypeError, ValueError):
                    continue
        return last

    # -- recovery views (see repro.durability) -------------------------------------

    def journals(self) -> list[dict[str, Any]]:
        """One row per durable journal on any host disk: host, journal name,
        record count — the operator's inventory of recoverable state."""
        self.queries_served += 1
        if self.network is None:
            return []
        from repro.durability.journal import Journal

        rows: list[dict[str, Any]] = []
        for host in sorted(self.network.hosts()):
            disk = self.network.disk(host)
            for name in sorted(disk.log_names()):
                journal = Journal(disk, name)
                rows.append({
                    "host": host,
                    "journal": name,
                    "records": len(journal),
                })
        return rows

    def recovery_summary(self) -> list[dict[str, Any]]:
        """Counts of durability events (orphans found, reconciled, recovery
        replays) from the resilience stream."""
        self.queries_served += 1
        if self.resilience_log is None:
            return []
        counts: dict[str, int] = {}
        for event in self.resilience_log.events:
            if event.code.startswith("Durability."):
                counts[event.code] = counts.get(event.code, 0) + 1
        return [
            {"code": code, "count": counts[code]} for code in sorted(counts)
        ]

    # -- observability views (see repro.observability) -----------------------------

    def traces(self, limit: int = 0) -> list[dict[str, Any]]:
        """One summary row per collected trace, oldest first.

        ``limit`` > 0 returns only the trailing *limit* traces.
        """
        self.queries_served += 1
        obs = self._obs()
        if obs is None:
            return []
        rows = obs.collector.traces()
        return rows[-int(limit):] if limit and int(limit) > 0 else rows

    def trace_tree(self, trace_id: str) -> list[dict[str, Any]]:
        """One trace's spans, depth-annotated in tree order."""
        self.queries_served += 1
        obs = self._obs()
        if obs is None:
            return []
        return obs.collector.tree(trace_id)

    def metrics_summary(self) -> dict[str, list[dict[str, Any]]]:
        """RED rows, gauges, and event counters.

        Queue-depth gauges are sampled from the schedulers at read time —
        depth is a level, not a flow, so the freshest value wins.
        """
        self.queries_served += 1
        obs = self._obs()
        if obs is None:
            return {"red": [], "gauges": [], "events": []}
        for host in sorted(self.resources):
            scheduler = self.resources[host].scheduler
            queued = sum(
                1 for r in scheduler.jobs() if r.state.value == "queued"
            )
            obs.metrics.set_gauge("queue_depth", host, queued)
            for row in scheduler.queue_stats():
                label = f"{row['host']}/{row['queue']}"
                obs.metrics.set_gauge("queue_depth", label, row["depth"])
                obs.metrics.set_gauge(
                    "queue_drain_rate", label, row["drain_rate"]
                )
        return obs.metrics.summary()

    def slowest_operations(self, limit: int = 10) -> list[dict[str, Any]]:
        """Server-side operations ranked slowest-first by mean latency."""
        self.queries_served += 1
        obs = self._obs()
        if obs is None:
            return []
        return obs.metrics.slowest(limit)

    def slo_summary(self) -> list[dict[str, Any]]:
        """One row per defined SLO: window totals, burn rate, alert state."""
        self.queries_served += 1
        obs = self._obs()
        if obs is None:
            return []
        return obs.slo.slo_summary()

    def slo_alerts(self, active_only: bool = True) -> list[dict[str, Any]]:
        """Firing burn-rate alerts with exemplar trace links — or, with
        ``active_only`` false, the full firing/resolved transition log."""
        self.queries_served += 1
        obs = self._obs()
        if obs is None:
            return []
        return obs.slo.alerts(bool(active_only))

    def sampling_summary(self) -> dict[str, Any]:
        """The tail sampler's retention ledger (kept/dropped, per-policy).

        An empty dict means sampling is off and the collector holds the
        full span population.
        """
        self.queries_served += 1
        obs = self._obs()
        if obs is None or obs.sampler is None:
            return {}
        return obs.sampler.accounting()


def deploy_monitoring(
    network: VirtualNetwork,
    resources: dict[str, ComputeResource],
    host: str = "monitor.gridportal.org",
    *,
    resilience_log=None,
    observability=None,
    load=None,
    replication=None,
) -> tuple[JobMonitoringService, str]:
    """Stand up the monitoring service; returns (impl, endpoint URL).

    The monitoring endpoint itself is never traced: it *is* the
    observability plane, and dashboard refreshes must not pollute the
    traces and RED series they display.
    """
    impl = JobMonitoringService(
        resources,
        resilience_log=resilience_log,
        network=network,
        observability=observability,
        load=load,
        replication=replication,
    )
    server = HttpServer(host, network)
    soap = SoapService("JobMonitoring", MONITORING_NAMESPACE)
    soap.traced = False
    soap.expose(impl.hosts)
    soap.expose(impl.grid_load)
    soap.expose(impl.qstat)
    soap.expose(impl.job_status)
    soap.expose(impl.user_jobs)
    soap.expose(impl.resilience_events)
    soap.expose(impl.resilience_summary)
    soap.expose(impl.load_lanes)
    soap.expose(impl.load_summary)
    soap.expose(impl.queue_load)
    soap.expose(impl.replication_summary)
    soap.expose(impl.journals)
    soap.expose(impl.recovery_summary)
    soap.expose(impl.traces)
    soap.expose(impl.trace_tree)
    soap.expose(impl.metrics_summary)
    soap.expose(impl.slowest_operations)
    soap.expose(impl.slo_summary)
    soap.expose(impl.slo_alerts)
    soap.expose(impl.sampling_summary)
    return impl, soap.mount(server, "/monitor")


def _esc(value: Any) -> str:
    """Every portlet cell goes through here: service-returned strings are
    untrusted (job names, hostnames, error messages) and must not inject
    markup into the portal page."""
    return html.escape(str(value), quote=True)


class GridLoadPortlet(Portlet):
    """A local portlet rendering the monitoring service's grid-load view —
    the HotPage-style machine-status window."""

    def __init__(
        self,
        network: VirtualNetwork,
        endpoint: str,
        *,
        name: str = "grid-load",
        title: str = "Grid load",
        source: str = "portal",
    ):
        super().__init__(name, title)
        self._client = SoapClient(
            network, endpoint, MONITORING_NAMESPACE, source=source, traced=False
        )

    def render(self, container_base: str) -> str:
        rows = self._client.call("grid_load")
        cells = ['<table class="grid-load">'
                 "<tr><th>host</th><th>system</th><th>free/total cpus</th>"
                 "<th>running</th><th>queued</th></tr>"]
        for row in rows:
            cells.append(
                f"<tr><td>{_esc(row['host'])}</td><td>{_esc(row['system'])}</td>"
                f"<td>{_esc(row['free_cpus'])}/{_esc(row['cpus'])}</td>"
                f"<td>{_esc(row['running'])}</td><td>{_esc(row['queued'])}</td></tr>"
            )
        cells.append("</table>")
        return "".join(cells)


class ResilienceEventsPortlet(Portlet):
    """The resilience window: headline counts by event code plus the tail of
    the retry/breaker-trip/failover stream, fetched over SOAP from the
    monitoring service."""

    def __init__(
        self,
        network: VirtualNetwork,
        endpoint: str,
        *,
        name: str = "resilience",
        title: str = "Resilience events",
        source: str = "portal",
        tail: int = 20,
    ):
        super().__init__(name, title)
        self.tail = tail
        self._client = SoapClient(
            network, endpoint, MONITORING_NAMESPACE, source=source, traced=False
        )

    def render(self, container_base: str) -> str:
        summary = self._client.call("resilience_summary")
        events = self._client.call("resilience_events", self.tail)
        cells = ['<table class="resilience-summary">'
                 "<tr><th>event</th><th>count</th></tr>"]
        for row in summary:
            cells.append(
                f"<tr><td>{_esc(row['code'])}</td><td>{_esc(row['count'])}</td></tr>"
            )
        cells.append("</table>")
        cells.append('<table class="resilience-events">'
                     "<tr><th>code</th><th>service</th><th>operation</th>"
                     "<th>message</th></tr>")
        for event in events:
            cells.append(
                f"<tr><td>{_esc(event['code'])}</td><td>{_esc(event['service'])}</td>"
                f"<td>{_esc(event['operation'])}</td>"
                f"<td>{_esc(event['message'])}</td></tr>"
            )
        cells.append("</table>")
        return "".join(cells)


class TraceViewPortlet(Portlet):
    """The span-waterfall window: one trace's tree with per-span timing
    bars, fetched over SOAP from the monitoring service.

    Renders the trace named by ``trace_id`` or, by default, the most
    recently collected one.
    """

    def __init__(
        self,
        network: VirtualNetwork,
        endpoint: str,
        *,
        name: str = "trace-view",
        title: str = "Trace view",
        source: str = "portal",
        trace_id: str = "",
    ):
        super().__init__(name, title)
        self.trace_id = trace_id
        self._client = SoapClient(
            network, endpoint, MONITORING_NAMESPACE, source=source, traced=False
        )

    def render(self, container_base: str) -> str:
        trace_id = self.trace_id
        if not trace_id:
            summaries = self._client.call("traces", 1)
            if not summaries:
                return '<p class="trace-view">no traces collected</p>'
            trace_id = summaries[0]["trace_id"]
        rows = self._client.call("trace_tree", trace_id)
        if not rows:
            return (
                f'<p class="trace-view">no spans for trace '
                f"{_esc(trace_id)}</p>"
            )
        t0 = min(r["start"] for r in rows)
        t1 = max(r["end"] for r in rows)
        width = max(t1 - t0, 1e-9)
        cells = [
            f'<table class="trace-view" data-trace="{_esc(trace_id)}">'
            "<tr><th>span</th><th>service</th><th>ms</th>"
            "<th>events</th><th>waterfall</th></tr>"
        ]
        for row in rows:
            offset = 100.0 * (row["start"] - t0) / width
            length = max(100.0 * (row["end"] - row["start"]) / width, 0.5)
            label = "&nbsp;" * 2 * int(row["depth"]) + _esc(row["name"])
            state = "error" if row["error"] else "ok"
            events = ", ".join(e["name"] for e in row["events"])
            cells.append(
                f'<tr class="span-{state}"><td>{label}</td>'
                f"<td>{_esc(row['service'])}</td>"
                f"<td>{(row['end'] - row['start']) * 1000:.2f}</td>"
                f"<td>{_esc(events)}</td>"
                f'<td><div class="bar" style="margin-left:{offset:.1f}%;'
                f'width:{length:.1f}%"></div></td></tr>'
            )
        cells.append("</table>")
        return "".join(cells)


class ReplicationPortlet(Portlet):
    """The multi-region window: per-region replication lag, hint backlog,
    store digests, and the last partition-heal time, fetched over SOAP from
    the monitoring service.  Every cell is escaped — region names and
    digests come back from remote services and are untrusted like any
    other service output."""

    def __init__(
        self,
        network: VirtualNetwork,
        endpoint: str,
        *,
        name: str = "replication",
        title: str = "Replication status",
        source: str = "portal",
    ):
        super().__init__(name, title)
        self._client = SoapClient(
            network, endpoint, MONITORING_NAMESPACE, source=source, traced=False
        )

    def render(self, container_base: str) -> str:
        rows = self._client.call("replication_summary")
        if not rows:
            return '<p class="replication">no replication topology</p>'
        cells = ['<table class="replication">'
                 "<tr><th>region</th><th>host</th><th>entries</th>"
                 "<th>digest</th><th>lag s</th><th>hint backlog</th>"
                 "<th>context seq</th><th>last heal</th></tr>"]
        for row in rows:
            lag = row["lag_s"]
            lag_text = f"{lag:.3f}" if lag >= 0 else "never"
            heal = row.get("last_heal_t", -1.0)
            heal_text = f"{heal:.3f}" if heal >= 0 else "-"
            cells.append(
                f"<tr><td>{_esc(row['region'])}</td><td>{_esc(row['host'])}</td>"
                f"<td>{_esc(row['entries'])}</td><td>{_esc(row['digest'])}</td>"
                f"<td>{_esc(lag_text)}</td><td>{_esc(row['hint_backlog'])}</td>"
                f"<td>{_esc(row['context_seq'])}</td>"
                f"<td>{_esc(heal_text)}</td></tr>"
            )
        cells.append("</table>")
        return "".join(cells)


class SLOPortlet(Portlet):
    """The promises window: one row per objective with its burn rate and
    alert state, then the firing alerts with their exemplar trace links
    (each exemplar renders as a ``trace_tree`` query URL against the
    monitoring endpoint, so the on-call click lands on the waterfall)."""

    def __init__(
        self,
        network: VirtualNetwork,
        endpoint: str,
        *,
        name: str = "slo",
        title: str = "Service-level objectives",
        source: str = "portal",
    ):
        super().__init__(name, title)
        self.endpoint = endpoint
        self._client = SoapClient(
            network, endpoint, MONITORING_NAMESPACE, source=source, traced=False
        )

    def render(self, container_base: str) -> str:
        rows = self._client.call("slo_summary")
        if not rows:
            return '<p class="slo">no objectives defined</p>'
        cells = ['<table class="slo-summary">'
                 "<tr><th>slo</th><th>operation</th><th>objective</th>"
                 "<th>target</th><th>good</th><th>burn</th><th>state</th></tr>"]
        for row in rows:
            cells.append(
                f'<tr class="slo-{_esc(row["state"])}">'
                f"<td>{_esc(row['slo'])}</td>"
                f"<td>{_esc(row['service'])}.{_esc(row['method'])}</td>"
                f"<td>{_esc(row['objective'])}</td>"
                f"<td>{_esc(row['target'])}</td>"
                f"<td>{_esc(row['good_fraction'])}</td>"
                f"<td>{_esc(row['burn_rate'])}</td>"
                f"<td>{_esc(row['state'])}</td></tr>"
            )
        cells.append("</table>")
        alerts = self._client.call("slo_alerts")
        if alerts:
            cells.append('<table class="slo-alerts">'
                         "<tr><th>alert</th><th>since</th><th>burn slow/fast</th>"
                         "<th>exemplars</th></tr>")
            for alert in alerts:
                links = " ".join(
                    f'<a href="{_esc(self.endpoint)}?method=trace_tree'
                    f'&amp;trace_id={_esc(trace_id)}">{_esc(trace_id[:8])}</a>'
                    for trace_id in alert["exemplars"]
                )
                cells.append(
                    f"<tr><td>{_esc(alert['slo'])}</td>"
                    f"<td>{_esc(alert['since'])}</td>"
                    f"<td>{_esc(alert['slow_burn'])}/{_esc(alert['fast_burn'])}</td>"
                    f"<td>{links or '-'}</td></tr>"
                )
            cells.append("</table>")
        return "".join(cells)


class MetricsPortlet(Portlet):
    """The RED table: request/error counts and latency percentiles per
    service method, plus the gauge table (breaker states, queue depths)."""

    def __init__(
        self,
        network: VirtualNetwork,
        endpoint: str,
        *,
        name: str = "metrics",
        title: str = "Service metrics",
        source: str = "portal",
    ):
        super().__init__(name, title)
        self._client = SoapClient(
            network, endpoint, MONITORING_NAMESPACE, source=source, traced=False
        )

    def render(self, container_base: str) -> str:
        summary = self._client.call("metrics_summary")
        cells = ['<table class="red-metrics">'
                 "<tr><th>service</th><th>method</th><th>side</th>"
                 "<th>requests</th><th>errors</th><th>mean ms</th>"
                 "<th>p95 ms</th></tr>"]
        for row in summary["red"]:
            cells.append(
                f"<tr><td>{_esc(row['service'])}</td><td>{_esc(row['method'])}</td>"
                f"<td>{_esc(row['side'])}</td><td>{_esc(row['requests'])}</td>"
                f"<td>{_esc(row['errors'])}</td><td>{_esc(row['mean_ms'])}</td>"
                f"<td>{_esc(row['p95_ms'])}</td></tr>"
            )
        cells.append("</table>")
        cells.append('<table class="gauges">'
                     "<tr><th>gauge</th><th>label</th><th>value</th></tr>")
        for row in summary["gauges"]:
            cells.append(
                f"<tr><td>{_esc(row['gauge'])}</td><td>{_esc(row['label'])}</td>"
                f"<td>{_esc(row['value'])}</td></tr>"
            )
        cells.append("</table>")
        return "".join(cells)
