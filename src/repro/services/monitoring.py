"""The job-monitoring core service.

§5.4: a portal aggregates "interfaces to core services such as file
transfer or job monitoring that may interest a user", and the application
descriptor schema (:mod:`repro.appws.schemas`) lists ``monitoring`` among
the bindable core services.  This module provides that service: a SOAP face
over the grid testbed's schedulers offering qstat-style views, per-job
status, and grid-wide load — plus a ready-made portlet rendering it.
"""

from __future__ import annotations

from typing import Any

from repro.faults import ResourceNotFoundError
from repro.grid.resources import ComputeResource
from repro.portlets.base import Portlet
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer

MONITORING_NAMESPACE = "urn:gce:job-monitoring"


class JobMonitoringService:
    """Aggregated, read-only views over every testbed scheduler, plus the
    portal-wide resilience event stream (retries, breaker trips, failovers
    — see :mod:`repro.resilience.events`)."""

    def __init__(
        self,
        resources: dict[str, ComputeResource],
        resilience_log=None,
        network: VirtualNetwork | None = None,
    ):
        self.resources = resources
        self.resilience_log = resilience_log
        #: lets the recovery views inventory journals on host disks
        self.network = network
        self.queries_served = 0

    def _resource(self, host: str) -> ComputeResource:
        resource = self.resources.get(host)
        if resource is None:
            raise ResourceNotFoundError(
                f"monitoring knows no resource {host!r}", {"host": host}
            )
        return resource

    # -- exposed methods ----------------------------------------------------------

    def hosts(self) -> list[str]:
        """The monitored compute resources."""
        return sorted(self.resources)

    def grid_load(self) -> list[dict[str, Any]]:
        """One row per resource: queuing system, cpu counts, queue depth."""
        self.queries_served += 1
        rows: list[dict[str, Any]] = []
        for host in sorted(self.resources):
            resource = self.resources[host]
            scheduler = resource.scheduler
            records = scheduler.jobs()
            rows.append({
                "host": host,
                "system": resource.queuing_system,
                "cpus": scheduler.cpus,
                "free_cpus": scheduler.free_cpus,
                "running": sum(1 for r in records if r.state.value == "running"),
                "queued": sum(1 for r in records if r.state.value == "queued"),
                "completed": scheduler.completed_count,
            })
        return rows

    def qstat(self, host: str) -> list[dict[str, Any]]:
        """The scheduler's full job table for one resource."""
        self.queries_served += 1
        return self._resource(host).scheduler.qstat()

    def job_status(self, host: str, job_id: str) -> dict[str, Any]:
        """One job's summary row (faults if unknown)."""
        self.queries_served += 1
        return self._resource(host).scheduler.job(job_id).summary()

    def user_jobs(self, logname: str) -> list[dict[str, Any]]:
        """Every job across the grid whose LOGNAME matches *logname*."""
        self.queries_served += 1
        rows: list[dict[str, Any]] = []
        for host in sorted(self.resources):
            for record in self.resources[host].scheduler.jobs():
                if record.spec.environment.get("LOGNAME") == logname:
                    rows.append(record.summary())
        return rows

    def resilience_events(self, limit: int = 0) -> list[dict[str, Any]]:
        """The portal's resilience event stream, most recent last.

        ``limit`` > 0 returns only the trailing *limit* events.
        """
        self.queries_served += 1
        if self.resilience_log is None:
            return []
        events = self.resilience_log.to_dicts()
        return events[-int(limit):] if limit and int(limit) > 0 else events

    def resilience_summary(self) -> list[dict[str, Any]]:
        """Event counts grouped by code (the portlet's headline numbers)."""
        self.queries_served += 1
        if self.resilience_log is None:
            return []
        counts: dict[str, int] = {}
        for event in self.resilience_log.events:
            counts[event.code] = counts.get(event.code, 0) + 1
        return [
            {"code": code, "count": counts[code]} for code in sorted(counts)
        ]

    # -- recovery views (see repro.durability) -------------------------------------

    def journals(self) -> list[dict[str, Any]]:
        """One row per durable journal on any host disk: host, journal name,
        record count — the operator's inventory of recoverable state."""
        self.queries_served += 1
        if self.network is None:
            return []
        from repro.durability.journal import Journal

        rows: list[dict[str, Any]] = []
        for host in sorted(self.network.hosts()):
            disk = self.network.disk(host)
            for name in sorted(disk.log_names()):
                journal = Journal(disk, name)
                rows.append({
                    "host": host,
                    "journal": name,
                    "records": len(journal),
                })
        return rows

    def recovery_summary(self) -> list[dict[str, Any]]:
        """Counts of durability events (orphans found, reconciled, recovery
        replays) from the resilience stream."""
        self.queries_served += 1
        if self.resilience_log is None:
            return []
        counts: dict[str, int] = {}
        for event in self.resilience_log.events:
            if event.code.startswith("Durability."):
                counts[event.code] = counts.get(event.code, 0) + 1
        return [
            {"code": code, "count": counts[code]} for code in sorted(counts)
        ]


def deploy_monitoring(
    network: VirtualNetwork,
    resources: dict[str, ComputeResource],
    host: str = "monitor.gridportal.org",
    *,
    resilience_log=None,
) -> tuple[JobMonitoringService, str]:
    """Stand up the monitoring service; returns (impl, endpoint URL)."""
    impl = JobMonitoringService(
        resources, resilience_log=resilience_log, network=network
    )
    server = HttpServer(host, network)
    soap = SoapService("JobMonitoring", MONITORING_NAMESPACE)
    soap.expose(impl.hosts)
    soap.expose(impl.grid_load)
    soap.expose(impl.qstat)
    soap.expose(impl.job_status)
    soap.expose(impl.user_jobs)
    soap.expose(impl.resilience_events)
    soap.expose(impl.resilience_summary)
    soap.expose(impl.journals)
    soap.expose(impl.recovery_summary)
    return impl, soap.mount(server, "/monitor")


class GridLoadPortlet(Portlet):
    """A local portlet rendering the monitoring service's grid-load view —
    the HotPage-style machine-status window."""

    def __init__(
        self,
        network: VirtualNetwork,
        endpoint: str,
        *,
        name: str = "grid-load",
        title: str = "Grid load",
        source: str = "portal",
    ):
        super().__init__(name, title)
        self._client = SoapClient(
            network, endpoint, MONITORING_NAMESPACE, source=source
        )

    def render(self, container_base: str) -> str:
        rows = self._client.call("grid_load")
        cells = ['<table class="grid-load">'
                 "<tr><th>host</th><th>system</th><th>free/total cpus</th>"
                 "<th>running</th><th>queued</th></tr>"]
        for row in rows:
            cells.append(
                f"<tr><td>{row['host']}</td><td>{row['system']}</td>"
                f"<td>{row['free_cpus']}/{row['cpus']}</td>"
                f"<td>{row['running']}</td><td>{row['queued']}</td></tr>"
            )
        cells.append("</table>")
        return "".join(cells)


class ResilienceEventsPortlet(Portlet):
    """The resilience window: headline counts by event code plus the tail of
    the retry/breaker-trip/failover stream, fetched over SOAP from the
    monitoring service."""

    def __init__(
        self,
        network: VirtualNetwork,
        endpoint: str,
        *,
        name: str = "resilience",
        title: str = "Resilience events",
        source: str = "portal",
        tail: int = 20,
    ):
        super().__init__(name, title)
        self.tail = tail
        self._client = SoapClient(
            network, endpoint, MONITORING_NAMESPACE, source=source
        )

    def render(self, container_base: str) -> str:
        summary = self._client.call("resilience_summary")
        events = self._client.call("resilience_events", self.tail)
        cells = ['<table class="resilience-summary">'
                 "<tr><th>event</th><th>count</th></tr>"]
        for row in summary:
            cells.append(
                f"<tr><td>{row['code']}</td><td>{row['count']}</td></tr>"
            )
        cells.append("</table>")
        cells.append('<table class="resilience-events">'
                     "<tr><th>code</th><th>service</th><th>operation</th>"
                     "<th>message</th></tr>")
        for event in events:
            cells.append(
                f"<tr><td>{event['code']}</td><td>{event['service']}</td>"
                f"<td>{event['operation']}</td><td>{event['message']}</td></tr>"
            )
        cells.append("</table>")
        return "".join(cells)
