"""The User Interface server and the one-call full-portal deployment.

:class:`PortalDeployment` stands up the *entire* Figure 4 architecture on a
virtual network — grid testbed, SRB, security, discovery, every core web
service, the application web service, and a portal host — and is the
fixture used by the integration tests, the examples, and the Figure 4
benchmark.  :class:`UserInterfaceServer` is the user-facing tier: per-user
logins, SOAP client proxies, portal shells, and the portlet container.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass, field

from repro.faults import InvalidRequestError
from repro.appws.catalog import build_catalog
from repro.appws.service import (
    APPWS_NAMESPACE,
    ApplicationWebService,
    deploy_application_service,
)
from repro.discovery.registry import ContainerRegistry, deploy_discovery
from repro.grid.resources import ComputeResource, build_testbed
from repro.portal.shell import PortalShell, parse_kv_args, require_args
from repro.portlets.container import PortletContainer
from repro.portlets.registry import PortletEntry
from repro.security.authservice import (
    AuthenticationService,
    ClientSecuritySession,
    deploy_auth_service,
)
from repro.security.gsi import SimpleCA
from repro.security.kerberos import Kdc
from repro.services.batchscript import (
    BSG_NAMESPACE,
    IuBatchScriptGenerator,
    SdscBatchScriptGenerator,
    deploy_batch_script_generator,
)
from repro.services.context import (
    CONTEXT_NAMESPACE,
    ContextManagerService,
    deploy_context_manager,
)
from repro.services.datamgmt import (
    SRBWS_NAMESPACE,
    SrbWebService,
    deploy_srb_service,
)
from repro.services.jobsubmit import (
    GLOBUSRUN_NAMESPACE,
    GlobusrunService,
    deploy_globusrun,
)
from repro.loadmgmt import AdmissionController, LoadRegistry
from repro.loadmgmt.metascheduler import (
    METASCHEDULER_NAMESPACE,
    MetaSchedulerService,
    deploy_metascheduler,
)
from repro.loadmgmt.portlet import LoadPortlet
from repro.resilience.breaker import CircuitBreakerPolicy
from repro.resilience.events import ResilienceLog
from repro.resilience.failover import FailoverClient
from repro.resilience.policy import RetryPolicy
from repro.services.monitoring import (
    MONITORING_NAMESPACE,
    JobMonitoringService,
    MetricsPortlet,
    ReplicationPortlet,
    ResilienceEventsPortlet,
    SLOPortlet,
    TraceViewPortlet,
    deploy_monitoring,
)
from repro.soap.client import SoapClient
from repro.srb.commands import Scommands
from repro.srb.server import SrbServer
from repro.srb.storage import StorageResource
from repro.transport.network import VirtualNetwork
from repro.uddi.model import (
    BindingTemplate,
    BusinessEntity,
    BusinessService,
    TModel,
)
from repro.uddi.registry import UddiRegistry
from repro.uddi.service import deploy_uddi
from repro.wizard.generator import SchemaWizard

PORTAL_IDENTITY = "/O=Grid/O=Reproduction/CN=portal-services"


@dataclass
class PortalDeployment:
    """Everything Figure 4 needs, deployed and wired."""

    network: VirtualNetwork
    ca: SimpleCA
    kdc: Kdc
    testbed: dict[str, ComputeResource]
    srb: SrbServer
    auth: AuthenticationService
    uddi: UddiRegistry
    discovery: ContainerRegistry
    globusrun: GlobusrunService
    srb_ws: SrbWebService
    context: ContextManagerService
    appws: ApplicationWebService
    monitoring: JobMonitoringService
    resilience: ResilienceLog = field(default_factory=ResilienceLog)
    endpoints: dict[str, str] = field(default_factory=dict)
    users: dict[str, str] = field(default_factory=dict)
    #: the observability bundle when built with ``observe=True``
    observability: object | None = None
    #: the metascheduler placement service (see repro.loadmgmt)
    metascheduler: MetaSchedulerService | None = None
    #: the registry of admission controllers guarding service endpoints
    load: LoadRegistry | None = None
    #: the multi-region topology when built with ``regions`` (see
    #: repro.replication) — None for the classic single-region portal
    replication: object | None = None
    #: host -> closure re-deploying that host's services from its surviving
    #: disk (populated with ``durable=True`` and/or ``regions``); hand this
    #: to a ChaosMonkey so a repaired host restarts instead of staying a
    #: registered-but-empty shell
    rebuilders: dict[str, object] = field(default_factory=dict)

    @staticmethod
    def build(
        network: VirtualNetwork | None = None,
        *,
        users: dict[str, str] | None = None,
        observe: bool = False,
        observe_seed: int = 0,
        sampling: bool | object = False,
        collector_capacity: int = 0,
        slos: tuple | None = None,
        admission_capacity: float = 64.0,
        admission_lanes: dict | None = None,
        metascheduler_policy: str = "least-loaded",
        regions: tuple[str, ...] | None = None,
        replication_seed: int = 0,
        durable: bool = False,
    ) -> "PortalDeployment":
        """Deploy the full architecture; ``users`` maps user -> password.

        ``observe=True`` installs the tracing/metrics layer
        (:class:`repro.observability.Observability`) on the network *before*
        any service deploys, bridges the deployment-wide resilience log into
        it, and stands up the trace-collector endpoint.  ``sampling``
        (``True`` for the seeded default chain, or a preconfigured
        :class:`~repro.observability.sampling.TailSampler`),
        ``collector_capacity`` (ring-buffer bound, 0 = unbounded), and
        ``slos`` (:class:`~repro.observability.slo.SLO` definitions for
        the bundle's burn-rate engine) pass through to the install.

        The Globusrun endpoint is always deployed behind admission control
        (``admission_capacity`` requests/s of modeled service capacity;
        ``admission_lanes`` maps principal -> :class:`~repro.loadmgmt.LaneConfig`
        for weighted fair sharing), and a MetaScheduler service is stood up
        over it with ``metascheduler_policy`` as the default placement policy.

        ``regions`` (e.g. ``("iu", "sdsc")``) additionally stands up the
        multi-region replication topology of :mod:`repro.replication` — a
        replicated registry + context replica per region, seeded
        anti-entropy gossip, and quorum context writes — wired into the
        resilience log and the monitoring service's
        ``replication_summary`` view.
        """
        network = network or VirtualNetwork()
        users = dict(users or {"alice": "alpine", "bob": "builder"})
        observability = None
        if observe:
            from repro.observability import Observability

            observability = Observability.install(
                network,
                seed=observe_seed,
                sampling=sampling,
                collector_capacity=collector_capacity,
                slos=slos,
            )
        ca = SimpleCA()
        kdc = Kdc("GRIDPORTAL.ORG", network.clock)
        now = network.clock.now

        # grid testbed and the portal's delegated service credential
        testbed = build_testbed(network, ca)
        service_cred = ca.issue_credential(
            PORTAL_IDENTITY, lifetime=365 * 86400.0, now=now
        )
        service_proxy = service_cred.sign_proxy(lifetime=30 * 86400.0, now=now)
        for resource in testbed.values():
            resource.gatekeeper.add_gridmap_entry(PORTAL_IDENTITY, "portal")

        # SRB
        srb = SrbServer(ca, network.clock)
        srb.add_resource(StorageResource("sdsc-disk"), default=True)
        srb.add_resource(StorageResource("sdsc-hpss"))
        srb.register_user(PORTAL_IDENTITY, "portal")
        scommands = Scommands(srb, service_proxy)

        # security
        auth, auth_url = deploy_auth_service(network, kdc)
        for user, password in users.items():
            kdc.add_user(user, password)
            srb.register_user(f"/O=Grid/O=Reproduction/CN={user}", user)

        # discovery
        uddi, uddi_url = deploy_uddi(network)
        discovery, discovery_url = deploy_discovery(network)

        # core services
        resilience = ResilienceLog()
        traces_url = ""
        if observability is not None:
            observability.observe_log(resilience)
            from repro.observability import deploy_trace_collector

            _, traces_url = deploy_trace_collector(
                network, observability.collector
            )
        load = LoadRegistry()
        admission = AdmissionController(
            network.clock,
            capacity=admission_capacity,
            lanes=admission_lanes,
            service="Globusrun",
            log=resilience,
        )
        load.register(admission)
        globusrun, globusrun_url = deploy_globusrun(
            network, testbed, service_proxy, durable=durable,
            admission=admission, resilience_log=resilience,
        )
        metascheduler, metascheduler_url = deploy_metascheduler(
            network, testbed, [globusrun_url],
            policy=metascheduler_policy, seed=observe_seed, log=resilience,
        )
        replication = None
        if regions:
            from repro.replication import MultiRegionReplication

            replication = MultiRegionReplication.build(
                network, tuple(regions), seed=replication_seed, log=resilience,
            )
        monitoring, monitoring_url = deploy_monitoring(
            network, testbed, resilience_log=resilience,
            observability=observability, load=load, replication=replication,
        )
        srb_ws, srb_ws_url = deploy_srb_service(network, scommands)
        context, context_url = deploy_context_manager(network)
        iu_bsg_url, iu_wsdl = deploy_batch_script_generator(
            network, IuBatchScriptGenerator(), "bsg.iu.edu"
        )
        sdsc_bsg_url, sdsc_wsdl = deploy_batch_script_generator(
            network, SdscBatchScriptGenerator(), "bsg.sdsc.edu"
        )

        # register the batch script generators with both discovery systems
        iu_entity = uddi.save_business(
            BusinessEntity("", "Community Grids Lab, Indiana University")
        )
        sdsc_entity = uddi.save_business(
            BusinessEntity("", "San Diego Supercomputer Center")
        )
        interface_tmodel = uddi.save_tmodel(
            TModel("", "gce:BatchScriptGenerator", "the agreed common interface")
        )
        for entity, name, url, wsdl_doc, schedulers in (
            (iu_entity, "Gateway Batch Script Generator", iu_bsg_url, iu_wsdl,
             ("PBS", "GRD")),
            (sdsc_entity, "HotPage Batch Script Generator", sdsc_bsg_url, sdsc_wsdl,
             ("LSF", "NQS")),
        ):
            uddi.save_service(
                BusinessService(
                    "",
                    entity.key,
                    name,
                    description="schedulers: " + ",".join(schedulers),
                    bindings=[
                        BindingTemplate("", "", url, [interface_tmodel.key],
                                        url + ".wsdl")
                    ],
                )
            )
            discovery.register_service(
                f"portals/{'IU' if entity is iu_entity else 'SDSC'}"
                f"/script-generators/{name.split()[0].lower()}",
                {
                    "queuing-system": list(schedulers),
                    "interface": BSG_NAMESPACE,
                    "wsdl": url + ".wsdl",
                    "endpoint": url,
                },
            )

        # application web service
        appws, appws_url = deploy_application_service(
            network,
            build_catalog(
                {
                    "batch-script-generation": iu_bsg_url,
                    "job-submission": globusrun_url,
                    "file-transfer": srb_ws_url,
                    "context-management": context_url,
                }
            ),
            bsg_endpoints={
                "PBS": iu_bsg_url,
                "GRD": iu_bsg_url,
                "LSF": sdsc_bsg_url,
                "NQS": sdsc_bsg_url,
            },
            globusrun_endpoint=globusrun_url,
            context_endpoint=context_url,
        )

        deployment = PortalDeployment(
            network=network,
            ca=ca,
            kdc=kdc,
            testbed=testbed,
            srb=srb,
            auth=auth,
            uddi=uddi,
            discovery=discovery,
            globusrun=globusrun,
            srb_ws=srb_ws,
            context=context,
            appws=appws,
            monitoring=monitoring,
            resilience=resilience,
            observability=observability,
            metascheduler=metascheduler,
            load=load,
            replication=replication,
            endpoints={
                **({"traces": traces_url} if traces_url else {}),
                "auth": auth_url,
                "uddi": uddi_url,
                "discovery": discovery_url,
                "globusrun": globusrun_url,
                "metascheduler": metascheduler_url,
                "monitoring": monitoring_url,
                "srb": srb_ws_url,
                "context": context_url,
                "bsg-iu": iu_bsg_url,
                "bsg-sdsc": sdsc_bsg_url,
                "appws": appws_url,
            },
            users=users,
        )
        if durable:
            globusrun_host = "globusrun.sdsc.edu"

            def rebuild_globusrun() -> None:
                # the crash-restart path: a fresh process attaches to the
                # host's surviving disk, replays its journals, and replaces
                # the deployment's handle so callers see the new incarnation
                impl, _ = deploy_globusrun(
                    network, testbed, service_proxy, durable=True,
                    admission=admission, resilience_log=resilience,
                )
                deployment.globusrun = impl

            deployment.rebuilders[globusrun_host] = rebuild_globusrun
        if replication is not None:
            deployment.rebuilders.update(replication.rebuilders())
        return deployment


class UserInterfaceServer:
    """The user-facing tier of Figure 4, on one host.

    Holds per-user security sessions and client proxies; builds per-user
    portal shells whose commands encapsulate core-service calls; hosts the
    portlet container and the wizard-generated application editors.
    """

    def __init__(self, deployment: PortalDeployment, host: str = "ui.gridportal.org"):
        self.deployment = deployment
        self.network = deployment.network
        self.host = host
        self.sessions: dict[str, ClientSecuritySession] = {}
        self.container = PortletContainer(self.network, host + ":portal")
        self._clients: dict[str, SoapClient] = {}
        self._workflow_runtime = None
        self.wizard = SchemaWizard(self.network, source_host=host)

    # -- proxies ------------------------------------------------------------------

    def client(self, service: str) -> SoapClient:
        """A (cached) client proxy to a deployed service by short name."""
        if service not in self._clients:
            namespaces = {
                "globusrun": GLOBUSRUN_NAMESPACE,
                "metascheduler": METASCHEDULER_NAMESPACE,
                "monitoring": MONITORING_NAMESPACE,
                "srb": SRBWS_NAMESPACE,
                "context": CONTEXT_NAMESPACE,
                "bsg-iu": BSG_NAMESPACE,
                "bsg-sdsc": BSG_NAMESPACE,
                "appws": APPWS_NAMESPACE,
            }
            endpoint = self.deployment.endpoints.get(service)
            if endpoint is None or service not in namespaces:
                raise KeyError(f"unknown service {service!r}")
            self._clients[service] = SoapClient(
                self.network, endpoint, namespaces[service], source=self.host
            )
        return self._clients[service]

    def failover_client(
        self,
        interface_tmodel: str = "gce:BatchScriptGenerator",
        namespace: str = BSG_NAMESPACE,
        *,
        sticky: bool = True,
        timeout: float | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker_policy: CircuitBreakerPolicy | None = None,
    ) -> FailoverClient:
        """A proxy bound to *every* registered provider of an interface.

        Providers are resolved from the deployment's UDDI registry over
        SOAP, so a newly published implementation becomes a failover target
        without portal code changes; retry/trip/failover events land in the
        deployment-wide resilience log the monitoring portlet renders.
        """
        return FailoverClient.from_uddi(
            self.network,
            self.deployment.endpoints["uddi"],
            interface_tmodel,
            namespace,
            source=self.host,
            sticky=sticky,
            timeout=timeout,
            retry_policy=retry_policy or RetryPolicy(max_attempts=2),
            breaker_policy=breaker_policy or CircuitBreakerPolicy(),
            resilience_log=self.deployment.resilience,
            service_name=interface_tmodel,
        )

    def add_resilience_portlet(self, *, tail: int = 20) -> ResilienceEventsPortlet:
        """Register the resilience-events window with the portlet container."""
        portlet = ResilienceEventsPortlet(
            self.network,
            self.deployment.endpoints["monitoring"],
            source=self.host,
            tail=tail,
        )
        self.container.add_local_portlet(portlet)
        return portlet

    def add_trace_portlet(self, *, trace_id: str = "") -> TraceViewPortlet:
        """Register the span-waterfall window with the portlet container."""
        portlet = TraceViewPortlet(
            self.network,
            self.deployment.endpoints["monitoring"],
            source=self.host,
            trace_id=trace_id,
        )
        self.container.add_local_portlet(portlet)
        return portlet

    def add_load_portlet(self, *, tail: int = 10) -> LoadPortlet:
        """Register the load-management window (admission lanes, queue
        drain rates, metascheduler placements) with the portlet container."""
        portlet = LoadPortlet(
            self.network,
            self.deployment.endpoints["monitoring"],
            self.deployment.endpoints.get("metascheduler", ""),
            source=self.host,
            tail=tail,
        )
        self.container.add_local_portlet(portlet)
        return portlet

    def add_metrics_portlet(self) -> MetricsPortlet:
        """Register the RED-metrics window with the portlet container."""
        portlet = MetricsPortlet(
            self.network,
            self.deployment.endpoints["monitoring"],
            source=self.host,
        )
        self.container.add_local_portlet(portlet)
        return portlet

    def add_replication_portlet(self) -> ReplicationPortlet:
        """Register the multi-region replication window with the container."""
        portlet = ReplicationPortlet(
            self.network,
            self.deployment.endpoints["monitoring"],
            source=self.host,
        )
        self.container.add_local_portlet(portlet)
        return portlet

    def add_slo_portlet(self) -> SLOPortlet:
        """Register the SLO/burn-rate window with the portlet container."""
        portlet = SLOPortlet(
            self.network,
            self.deployment.endpoints["monitoring"],
            source=self.host,
        )
        self.container.add_local_portlet(portlet)
        return portlet

    # -- the workflow engine (repro.shell) ------------------------------------

    def workflow_runtime(self):
        """The (cached) :class:`~repro.shell.runtime.WorkflowRuntime` binding
        the stage catalog to this deployment's endpoints from this host."""
        if getattr(self, "_workflow_runtime", None) is None:
            from repro.shell.runtime import WorkflowRuntime

            self._workflow_runtime = WorkflowRuntime.from_deployment(
                self.deployment, source=self.host
            )
        return self._workflow_runtime

    def workflow_executor(
        self,
        workflow,
        *,
        run_id: str = "run-0",
        seed: int = 0,
        journal_name: str = "",
        max_width: int = 4,
    ):
        """A journaled :class:`~repro.shell.executor.WorkflowExecutor` for
        *workflow* on this host's disk.

        The journal lives on the UI host's surviving disk, so a crashed
        portal process resumes the run by asking a fresh server for an
        executor with the same ``journal_name`` — the constructor recovers
        completed stages and only unfinished ones are re-driven.  Stage
        attempts pass through the deployment's Globusrun admission
        controller, competing with interactive portal traffic.
        """
        from repro.durability.journal import Journal
        from repro.shell.executor import WorkflowExecutor

        journal = Journal(
            self.network.disk(self.host),
            journal_name or f"wf-{workflow.name}-{run_id}",
            clock=self.network.clock,
        )
        admission = None
        if self.deployment.load is not None:
            admission = self.deployment.load.controllers.get("Globusrun")
        return WorkflowExecutor(
            workflow,
            self.workflow_runtime(),
            journal=journal,
            run_id=run_id,
            seed=seed,
            admission=admission,
            max_width=max_width,
        )

    def add_workflow_portlet(self, store, run: str):
        """Register the provenance-tree window for one workflow run."""
        from repro.shell.portlet import WorkflowPortlet

        portlet = WorkflowPortlet(store, run)
        self.container.add_local_portlet(portlet)
        return portlet

    # -- login --------------------------------------------------------------------------

    def login(self, user: str, password: str) -> ClientSecuritySession:
        session = ClientSecuritySession(
            self.network,
            self.deployment.kdc,
            self.deployment.endpoints["auth"],
            ui_host=self.host,
        )
        session.login(user, password)
        self.sessions[user] = session
        return session

    # -- the portal shell -------------------------------------------------------------------

    def make_shell(self, user: str = "guest") -> PortalShell:
        """Build the tool chest: one command per core-service operation."""
        shell = PortalShell(user)
        appws = self.client("appws")
        globusrun = self.client("globusrun")
        srb = self.client("srb")
        context = self.client("context")

        def cmd_apps(args: list[str], stdin: str) -> str:
            return "\n".join(
                f"{a['name']} {a['version']}: {a['description']}"
                for a in appws.call("list_applications")
            )

        def cmd_describe(args: list[str], stdin: str) -> str:
            require_args(args, 1, "describe <application>")
            return appws.call("get_descriptor", args[0])

        def cmd_genscript(args: list[str], stdin: str) -> str:
            require_args(args, 1, "genscript <scheduler> key=value...")
            scheduler = args[0].upper()
            _pos, params = parse_kv_args(args[1:])
            bsg = self.client("bsg-iu" if scheduler in ("PBS", "GRD") else "bsg-sdsc")
            return bsg.call("generateScript", scheduler, params)

        def cmd_submit(args: list[str], stdin: str) -> str:
            require_args(args, 2, "submit <host> <executable> [args...] [key=value...]")
            positional, settings = parse_kv_args(args)
            host, executable, *rest = positional
            return globusrun.call(
                "run",
                host,
                executable,
                " ".join(rest),
                int(settings.get("count", "1")),
                settings.get("queue", ""),
                int(settings.get("walltime", "3600")),
            )

        def cmd_gridload(args: list[str], stdin: str) -> str:
            rows = self.client("monitoring").call("grid_load")
            return "\n".join(
                f"{row['host']:<18} {row['system']:<4} "
                f"{row['free_cpus']:>4}/{row['cpus']:<4} free  "
                f"run={row['running']} queued={row['queued']}"
                for row in rows
            )

        def cmd_qstat(args: list[str], stdin: str) -> str:
            require_args(args, 1, "qstat <host>")
            rows = self.client("monitoring").call("qstat", args[0])
            if not rows:
                return "(no jobs)"
            return "\n".join(
                f"{row['job_id']:<24} {row['name']:<16} "
                f"{str(row['queue']):<8} {row['state']}"
                for row in rows
            )

        def cmd_validate(args: list[str], stdin: str) -> str:
            require_args(args, 1, "validate <scheduler>  (stdin is the script)")
            scheduler = args[0].upper()
            bsg = self.client("bsg-iu" if scheduler in ("PBS", "GRD") else "bsg-sdsc")
            problems = bsg.call("validateScript", scheduler, stdin)
            if problems:
                raise InvalidRequestError("; ".join(problems))
            return stdin  # pass the validated script downstream

        def cmd_srbls(args: list[str], stdin: str) -> str:
            require_args(args, 1, "srbls <collection>")
            return "\n".join(srb.call("ls", args[0], ""))

        def cmd_srbcat(args: list[str], stdin: str) -> str:
            require_args(args, 1, "srbcat <path>")
            return srb.call("cat", args[0])

        def cmd_srbput(args: list[str], stdin: str) -> str:
            require_args(args, 1, "srbput <path>  (stdin is the content)")
            encoded = base64.b64encode(stdin.encode("utf-8")).decode("ascii")
            size = srb.call("put", args[0], encoded)
            return f"stored {size} bytes at {args[0]}"

        def cmd_archive(args: list[str], stdin: str) -> str:
            require_args(args, 1, "archive <user/problem/session>  (stdin is the descriptor)")
            parts = args[0].strip("/").split("/")
            if len(parts) != 3:
                return "archive path must be user/problem/session"
            context.call("createUserContext", parts[0])
            context.call("createProblemContext", parts[0], parts[1])
            context.call("createSessionContext", *parts)
            context.call("setSessionDescriptor", *parts, stdin)
            return f"archived {len(stdin)} bytes to {args[0]}"

        def cmd_run_app(args: list[str], stdin: str) -> str:
            require_args(args, 2, "runapp <application> <host> key=value...")
            _pos, choices = parse_kv_args(args[2:])
            instance = appws.call("prepare", args[0], args[1], choices)
            appws.call("run", instance)
            return appws.call("get_output", instance)

        shell.register("apps", cmd_apps, "apps - list deployed applications")
        shell.register("describe", cmd_describe,
                       "describe <app> - the application descriptor XML")
        shell.register("genscript", cmd_genscript,
                       "genscript <scheduler> key=value... - batch script generation")
        shell.register("submit", cmd_submit,
                       "submit <host> <exe> [args] - run a job via Globusrun")
        shell.register("gridload", cmd_gridload,
                       "gridload - free cpus and queue depth per resource")
        shell.register("qstat", cmd_qstat, "qstat <host> - the host's job table")
        shell.register("validate", cmd_validate,
                       "validate <scheduler> - validate the script on stdin")
        shell.register("srbls", cmd_srbls, "srbls <collection> - SRB listing")
        shell.register("srbcat", cmd_srbcat, "srbcat <path> - SRB file contents")
        shell.register("srbput", cmd_srbput, "srbput <path> - store stdin in SRB")
        shell.register("archive", cmd_archive,
                       "archive <u/p/s> - store stdin as the session descriptor")
        shell.register("runapp", cmd_run_app,
                       "runapp <app> <host> key=value... - full application run")

        # wire '<' / '>' redirection to the SRB web service
        def read_file(path: str) -> str:
            return srb.call("cat", path)

        def write_file(path: str, data: str) -> None:
            srb.call("put", path, base64.b64encode(data.encode()).decode())

        shell.register_store(read_file, write_file)
        return shell

    # -- portlets over the service UIs -----------------------------------------------------------

    def add_remote_ui_portlet(self, name: str, url: str, *, title: str = "") -> None:
        self.container.registry.register(
            PortletEntry(name=name, type="WebFormPortlet", url=url, title=title)
        )
