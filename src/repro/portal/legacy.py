"""The stovepipe: a faithful pre-web-services three-tier portal.

§1: "A major shortcoming of the three-tiered computing portal design is its
lack of interoperability.  The three-tiered architecture results in a
classic stove-pipe problem: user interfaces are locked into particular
middle tiers, which in turn are locked into specific back end systems."

This module implements that problem so the reproduction can measure the
paper's solution against it (the F1 benchmark's baseline) and demonstrate
the lock-in concretely (tests/integration/test_stovepipe.py):

- two middle tiers with *incompatible interfaces* — the Gateway-style tier
  speaks contexts + batch scripts, the HotPage-style tier speaks command
  lines — because that is exactly how independently evolved portals looked;
- each middle tier hardwired to its own backend kind;
- a UI tier written against one middle tier's method names, unusable
  against the other without a rewrite.

Nothing here publishes WSDL, speaks SOAP, or appears in any registry: the
only machine interface is the HTML the UI tier emits.
"""

from __future__ import annotations

import itertools

from repro.faults import InvalidRequestError, ResourceNotFoundError
from repro.grid.jobs import JobSpec
from repro.grid.queuing.base import BatchScheduler
from repro.transport.http import HttpRequest, HttpResponse
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer


class GatewayStyleMiddleTier:
    """The IU-flavoured legacy middle tier: context-scoped batch scripts.

    Interface shape (method names, argument conventions) deliberately
    mirrors WebFlow idioms and matches *nothing else*.
    """

    def __init__(self, backend: BatchScheduler):
        if backend.dialect.name not in ("PBS", "GRD"):
            raise InvalidRequestError(
                "the Gateway middle tier only drives PBS/GRD backends"
            )
        self._backend = backend
        self._contexts: dict[str, list[str]] = {}

    def openUserContext(self, user: str) -> str:
        self._contexts.setdefault(user, [])
        return user

    def submitBatchScript(self, context: str, script: str) -> str:
        if context not in self._contexts:
            raise InvalidRequestError(f"no user context {context!r}")
        job_id = self._backend.submit_script(script)
        self._contexts[context].append(job_id)
        return job_id

    def retrieveJobOutput(self, context: str, job_id: str) -> str:
        if job_id not in self._contexts.get(context, []):
            raise ResourceNotFoundError(
                f"job {job_id!r} not in context {context!r}"
            )
        return self._backend.wait_for(job_id).stdout


class HotPageStyleMiddleTier:
    """The SDSC-flavoured legacy middle tier: command lines, no contexts.

    A *different* vocabulary for the same job: ``run_command`` /
    ``get_result`` with positional conventions of its own.
    """

    def __init__(self, backend: BatchScheduler):
        if backend.dialect.name not in ("LSF", "NQS"):
            raise InvalidRequestError(
                "the HotPage middle tier only drives LSF/NQS backends"
            )
        self._backend = backend
        self._results: dict[str, str] = {}
        self._ids = itertools.count(1)

    def run_command(self, command_line: str, cpus: int, minutes: int) -> str:
        words = command_line.split()
        if not words:
            raise InvalidRequestError("empty command line")
        job_id = self._backend.submit(JobSpec(
            name="hotpage-job",
            executable=words[0],
            arguments=words[1:],
            cpus=cpus,
            wallclock_limit=minutes * 60.0,
        ))
        handle = f"hp{next(self._ids):05d}"
        self._results[handle] = job_id
        return handle

    def get_result(self, handle: str) -> str:
        job_id = self._results.get(handle)
        if job_id is None:
            raise ResourceNotFoundError(f"unknown HotPage job {handle!r}")
        return self._backend.wait_for(job_id).stdout


class GatewayLegacyUI:
    """A UI tier written against :class:`GatewayStyleMiddleTier`'s method
    names.  Handing it any other middle tier fails at call time — the
    stovepipe, demonstrated."""

    def __init__(self, middle_tier, host: str, network: VirtualNetwork):
        self.middle_tier = middle_tier
        self.host = host
        server = HttpServer(host, network)
        server.mount("/gateway", self.handle)

    def submit_page(self) -> str:
        return (
            "<html><body><h1>Gateway job submission</h1>"
            '<form method="POST" action="/gateway/submit">'
            '<input type="text" name="user"/>'
            '<textarea name="script"></textarea>'
            '<input type="submit"/></form></body></html>'
        )

    def handle(self, request: HttpRequest) -> HttpResponse:
        if request.method == "GET":
            return HttpResponse(200, {"Content-Type": "text/html"},
                                self.submit_page())
        form = request.form()
        user = form.get("user", "anonymous")
        script = form.get("script", "")
        # hardwired to the Gateway middle-tier vocabulary:
        context = self.middle_tier.openUserContext(user)
        job_id = self.middle_tier.submitBatchScript(context, script)
        output = self.middle_tier.retrieveJobOutput(context, job_id)
        return HttpResponse(
            200, {"Content-Type": "text/html"},
            f"<html><body><h1>Job {job_id}</h1><pre>{output}</pre></body></html>",
        )
