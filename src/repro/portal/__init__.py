"""The integrated portal architecture (§6 / Figure 4).

"The integrated architecture begins to resemble a distributed operating
system: user interactions are through a finite list of basic commands that
operate in a 'shell' or execution environment.  These commands encapsulate
'system' level calls to actually interact with computing resources."

- :mod:`repro.portal.shell` — the portal shell: named commands over the
  core web services, composable with pipes ("redirecting output through
  pipes, for example").
- :mod:`repro.portal.uiserver` — the User Interface server: per-user
  security sessions, client proxies to every deployed service, the portlet
  container, and wizard-generated application UIs, on one host.
"""

from repro.portal.shell import PortalShell, ShellError
from repro.portal.uiserver import PortalDeployment, UserInterfaceServer

__all__ = ["PortalShell", "ShellError", "PortalDeployment", "UserInterfaceServer"]
