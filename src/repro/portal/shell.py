"""The portal shell: composable commands over core portal services.

"One may envision a scripting environment for example that provides the
syntax for linking the various core services (redirecting output through
pipes, for example) and the logic for executing services."

Commands are the *tool chest* of Figure 4: each one wraps a SOAP client
call; none touches the system-level grid services directly.  ``run`` parses
a pipeline string, threading each command's stdout into the next command's
stdin.
"""

from __future__ import annotations

import shlex
from typing import Callable

from repro.faults import InvalidRequestError, PortalError

# A command: (args, stdin) -> stdout
Command = Callable[[list[str], str], str]


class ShellError(RuntimeError):
    """Pipeline parse or execution failure."""


class PortalShell:
    """A per-user execution environment of registered commands.

    Beyond pipes, the scripting environment supports:

    - variables: ``setvar NAME value`` and ``$NAME`` token substitution;
    - redirection against a pluggable file store (the UI server wires it to
      the SRB): ``< path`` feeds a stored file into the first stage's
      stdin, ``> path`` stores the final stdout.
    """

    def __init__(self, user: str = "guest"):
        self.user = user
        self._commands: dict[str, Command] = {}
        self._help: dict[str, str] = {}
        self.variables: dict[str, str] = {"USER": user}
        self._read_file: Callable[[str], str] | None = None
        self._write_file: Callable[[str, str], None] | None = None
        self.register("help", self._cmd_help, "help - list available commands")
        self.register("echo", self._cmd_echo, "echo [words...] - emit words")
        self.register("cat", self._cmd_cat, "cat - pass stdin through")
        self.register("setvar", self._cmd_setvar,
                      "setvar NAME value - set a shell variable ($NAME)")
        self.commands_run = 0

    # -- registration ------------------------------------------------------------

    def register(self, name: str, command: Command, help_text: str = "") -> None:
        self._commands[name] = command
        self._help[name] = help_text or name

    def register_store(
        self,
        reader: Callable[[str], str] | None,
        writer: Callable[[str, str], None] | None,
    ) -> None:
        """Attach the file store used by ``<`` / ``>`` redirection."""
        self._read_file = reader
        self._write_file = writer

    def commands(self) -> list[str]:
        """The finite list of basic commands."""
        return sorted(self._commands)

    # -- built-ins ------------------------------------------------------------------

    def _cmd_help(self, args: list[str], stdin: str) -> str:
        return "\n".join(self._help[name] for name in self.commands())

    @staticmethod
    def _cmd_echo(args: list[str], stdin: str) -> str:
        return " ".join(args)

    @staticmethod
    def _cmd_cat(args: list[str], stdin: str) -> str:
        return stdin

    def _cmd_setvar(self, args: list[str], stdin: str) -> str:
        if len(args) < 1:
            raise ShellError("usage: setvar NAME [value]  (value defaults to stdin)")
        name = args[0]
        if not name.isidentifier():
            raise ShellError(f"bad variable name {name!r}")
        self.variables[name] = " ".join(args[1:]) if len(args) > 1 else stdin
        return self.variables[name]

    # -- execution ----------------------------------------------------------------------

    def _substitute(self, word: str) -> str:
        if word.startswith("$") and word[1:] in self.variables:
            return self.variables[word[1:]]
        return word

    def run_command(self, line: str, stdin: str = "") -> str:
        """Run one command (no pipes)."""
        try:
            words = shlex.split(line)
        except ValueError as exc:
            raise ShellError(f"cannot parse command {line!r}: {exc}") from exc
        if not words:
            raise ShellError("empty command")
        words = [self._substitute(word) for word in words]
        name, args = words[0], words[1:]
        command = self._commands.get(name)
        if command is None:
            raise ShellError(
                f"unknown command {name!r}; try 'help' "
                f"(available: {', '.join(self.commands())})"
            )
        try:
            result = command(args, stdin)
        except PortalError as err:
            raise ShellError(f"{name}: {err.code}: {err.message}") from err
        self.commands_run += 1
        return result

    def run(self, pipeline: str, stdin: str = "") -> str:
        """Run a pipeline: ``[cmd < src |] cmd args | ... [> dest]``."""
        stages = [stage.strip() for stage in pipeline.split("|")]
        if any(not stage for stage in stages):
            raise ShellError(f"empty pipeline stage in {pipeline!r}")
        stages[0], stdin = self._apply_input_redirect(stages[0], stdin)
        stages[-1], dest = self._split_output_redirect(stages[-1])
        if not stages[0] or not stages[-1]:
            raise ShellError("redirection without a command")
        data = stdin
        for stage in stages:
            data = self.run_command(stage, data)
        if dest is not None:
            if self._write_file is None:
                raise ShellError("no file store attached for '>' redirection")
            self._write_file(dest, data)
        return data

    def run_script(self, script: str) -> list[str]:
        """Run a multi-line portal script: one pipeline per line, ``#``
        comments and blank lines skipped, variables persisting across
        lines.  Returns each pipeline's output."""
        outputs: list[str] = []
        for lineno, raw_line in enumerate(script.splitlines(), start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                outputs.append(self.run(line))
            except ShellError as exc:
                raise ShellError(f"line {lineno}: {exc}") from exc
        return outputs

    def _apply_input_redirect(self, stage: str, stdin: str) -> tuple[str, str]:
        if "<" not in stage:
            return stage, stdin
        command, _, source = stage.partition("<")
        source = self._substitute(source.strip())
        if not source:
            raise ShellError("'<' without a source path")
        if self._read_file is None:
            raise ShellError("no file store attached for '<' redirection")
        try:
            return command.strip(), self._read_file(source)
        except PortalError as err:
            raise ShellError(f"<{source}: {err.code}: {err.message}") from err

    def _split_output_redirect(self, stage: str) -> tuple[str, str | None]:
        if ">" not in stage:
            return stage, None
        command, _, dest = stage.partition(">")
        dest = self._substitute(dest.strip())
        if not dest:
            raise ShellError("'>' without a destination path")
        return command.strip(), dest


def parse_kv_args(args: list[str]) -> tuple[list[str], dict[str, str]]:
    """Split shell args into positionals and key=value settings."""
    positional: list[str] = []
    settings: dict[str, str] = {}
    for arg in args:
        key, eq, value = arg.partition("=")
        if eq and key.isidentifier():
            settings[key] = value
        else:
            positional.append(arg)
    return positional, settings


def require_args(args: list[str], count: int, usage: str) -> list[str]:
    if len(args) < count:
        raise InvalidRequestError(f"usage: {usage}")
    return args
